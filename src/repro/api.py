"""Stable entry point: one session object over the whole pipeline.

Everything the CLI, benchmark harness, and tests do — characterize a
workload, evaluate original vs transformed code on a platform model,
sweep a parameter — flows through a :class:`Session` configured by one
:class:`RunConfig`:

    >>> from repro.api import Session, RunConfig
    >>> with Session(RunConfig(scale="test", jobs=4, retries=2)) as s:
    ...     mix = s.characterize("hmmsearch").mix
    ...     rows = s.evaluate()            # full Table 8 grid
    ...     points = s.sweep("hmmsearch", "l1_hit_int", [1, 2, 3])

The session owns the knobs that used to drift between entry points:

* the **run cache** directory (and whether caching is on at all),
* **parallelism** (worker-process count),
* the **resilience policy** — per-task timeout, retry count, backoff —
  and any **fault-injection** config, all threaded into every
  :class:`~repro.core.parallel.ParallelRunner` the session builds,
* the **tracer** (pass ``trace=`` to collect telemetry and flush it on
  :meth:`close` / context-manager exit).

Results are memoized per (workload, scale, seed) within the session
and persisted through the run cache across sessions, so repeated
queries cost one characterization run, exactly like the paper's
instrument-once / analyse-many ATOM workflow.

Every run — even a single serial one — goes through the fault-tolerant
execution engine, so retry/timeout/fault behavior is identical whether
a workload is characterized alone or as part of a fan-out.

:meth:`Session.analyze` is the trace-backed query path: the first
analysis of a workload records a :class:`repro.trace.TraceArtifact`
(one instrumented compiled run, banked in the run cache), and every
subsequent analysis — any set of tools from the
:mod:`repro.atom.registry` — replays the stored trace without
re-executing the program, bit-identical to direct execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.atom.runner import CharacterizationResult
from repro.core import faults as faults_mod
from repro.core.parallel import BackoffPolicy, ParallelRunner
from repro.core.pipeline import EvaluationResult
from repro.workloads.registry import all_workloads, get_workload, spec_workloads

__all__ = ["AnalyzeResult", "RunConfig", "Session"]

#: The Table 7 platform keys, in paper order, plus the LDBP what-if
#: column (docs/branch-prediction.md).
DEFAULT_PLATFORMS: Tuple[str, ...] = (
    "alpha", "powerpc", "pentium4", "itanium", "ldbp",
)


@dataclass(frozen=True)
class RunConfig:
    """Everything a :class:`Session` needs to run experiments.

    ``scale`` is the characterization dataset scale, ``eval_scale``
    the (heavier) evaluation scale used by the Table 8 grid.  ``cache``
    turns the persistent run cache off entirely; ``cache_dir`` pins its
    directory (default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    ``retries``/``timeout`` default from ``$REPRO_RETRIES`` /
    ``$REPRO_TIMEOUT`` when None; ``faults`` pins a fault-injection
    config (default: whatever ``$REPRO_FAULTS`` says, usually none).
    ``trace`` names a JSONL file: telemetry is enabled for the
    session's lifetime and flushed there on close.  ``backend`` picks
    the execution engine (``compiled``/``switch``/``batched``; None
    defers to ``$REPRO_BACKEND``, then the compiled default — see
    :mod:`repro.exec.backends`).  All backends are bit-identical, so
    cached runs are shared across backends; ``batched`` additionally
    makes :meth:`Session.characterize_many` group compatible requests
    (same workload and scale) into lockstep batches.
    """

    scale: str = "medium"
    eval_scale: str = "large"
    seed: int = 0
    jobs: int = 1
    cache: bool = True
    cache_dir: Optional[str] = None
    retries: Optional[int] = None
    timeout: Optional[float] = None
    backoff: Optional[BackoffPolicy] = None
    faults: Optional[faults_mod.FaultConfig] = None
    trace: Optional[str] = None
    backend: Optional[str] = None
    #: Keep one warm worker pool alive across batch calls (used by the
    #: ``repro serve`` request server); released by :meth:`Session.close`.
    keep_workers: bool = False

    def with_overrides(self, **overrides) -> "RunConfig":
        """A copy with the given fields replaced (None values ignored)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self


@dataclass
class AnalyzeResult:
    """One :meth:`Session.analyze` answer.

    ``tools`` maps registry names to the tool instances holding the
    analysis state; ``payloads`` maps the same names to their
    JSON-friendly payloads (:func:`repro.atom.registry.payloads`).
    ``source`` says where the trace came from (``memo``/``cache``/
    ``record``); ``replayed`` is False only when the run was not
    traceable (budget-crossing or raising runs) and the tools were fed
    by direct execution instead — the results are identical either way.
    """

    workload: str
    scale: str
    seed: int
    fingerprint: str
    executed: int
    source: str
    replayed: bool
    tools: Dict[str, object]
    payloads: Dict[str, object]


class Session:
    """One configured pipeline: characterize, analyze, evaluate, sweep.

    Construct with a :class:`RunConfig` or keyword overrides
    (``Session(scale="test", jobs=4)``).  Usable as a context manager;
    exit flushes the trace file when tracing was requested.
    """

    def __init__(self, config: Optional[RunConfig] = None, **overrides):
        if config is None:
            config = RunConfig()
        self.config = config.with_overrides(**overrides)
        self.backend  # fail fast on unknown backend names
        self._runs: Dict[Tuple[str, str, int], CharacterizationResult] = {}
        self._fingerprints: Dict[Tuple[str, str, int], str] = {}
        self._traces: Dict[Tuple[str, str, int], object] = {}
        self._pool: Optional[ParallelRunner] = None
        self._cache = None
        if self.config.cache:
            from repro.core.runcache import _STATS_FLUSH_OPS, RunCache

            # A session is long-lived and flushes on close, so it can
            # batch cache-counter persistence off the warm load path.
            self._cache = RunCache(
                self.config.cache_dir, stats_flush_ops=_STATS_FLUSH_OPS
            )
        if self.config.trace:
            obs.enable()

    # -- plumbing ------------------------------------------------------------
    @property
    def scale(self) -> str:
        return self.config.scale

    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def jobs(self) -> int:
        return max(1, int(self.config.jobs))

    @property
    def backend(self) -> str:
        """The resolved backend name (compiled/switch/batched)."""
        from repro.exec.backends import resolve_backend

        return resolve_backend(self.config.backend)

    @property
    def cache(self):
        """The session's :class:`~repro.core.runcache.RunCache` (or None)."""
        return self._cache

    def runner(self, jobs: Optional[int] = None) -> ParallelRunner:
        """A :class:`ParallelRunner` carrying the session's policy."""
        return ParallelRunner(
            jobs=self.jobs if jobs is None else jobs,
            retries=self.config.retries,
            timeout=self.config.timeout,
            backoff=self.config.backoff,
            faults=self.config.faults,
        )

    def _fingerprint(self, name: str, scale: str, seed: int) -> str:
        from repro.core.runcache import workload_fingerprint

        # Shared with the run cache AND run manifests (one source of
        # truth for run identity; see repro.obs.manifest.run_manifest).
        # Memoized: the fingerprint hashes the program's disassembly
        # and dataset bindings, and the request server computes it per
        # request for single-flight keying.
        key = (name, scale, seed)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is None:
            fingerprint = workload_fingerprint(name, scale, seed)
            self._fingerprints[key] = fingerprint
        return fingerprint

    fingerprint = _fingerprint

    def _batch_runner(self) -> ParallelRunner:
        """The runner batch calls use: warm and shared when
        ``keep_workers`` is set, otherwise a fresh per-call pool."""
        if not self.config.keep_workers:
            return self.runner()
        if self._pool is None:
            self._pool = ParallelRunner(
                jobs=self.jobs,
                retries=self.config.retries,
                timeout=self.config.timeout,
                backoff=self.config.backoff,
                faults=self.config.faults,
                keep_alive=True,
            )
        return self._pool

    def memoized(
        self, name: str, scale: Optional[str] = None, seed: Optional[int] = None
    ) -> Optional[CharacterizationResult]:
        """The already-materialized run for ``(name, scale, seed)``, or
        None — memo only, no disk I/O and no engine work.  The request
        server's fast path: a hit is answered in the caller's thread
        without consuming a queue slot."""
        scale = self.scale if scale is None else scale
        seed = self.seed if seed is None else seed
        return self._runs.get((name, scale, seed))

    # -- characterization ----------------------------------------------------
    def run(
        self, name: str, scale: Optional[str] = None, seed: Optional[int] = None
    ) -> CharacterizationResult:
        """The (memoized, cached) characterization run for ``name``."""
        from repro.core.parallel import _characterize_task
        from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS

        get_workload(name)  # unknown workloads raise KeyError here, not in a worker
        scale = self.scale if scale is None else scale
        seed = self.seed if seed is None else seed
        memo_key = (name, scale, seed)
        with obs.span(
            "experiment.run", workload=name, scale=scale, seed=seed
        ) as span:
            source = "memo"
            result = self._runs.get(memo_key)
            if result is None and self._cache is not None:
                cached = self._cache.load(self._fingerprint(name, scale, seed))
                if isinstance(cached, CharacterizationResult):
                    result = cached
                    source = "cache"
            if result is None:
                source = "interp"
                _, result = self.runner(jobs=1).run_one(
                    _characterize_task,
                    (name, scale, seed, DEFAULT_MAX_INSTRUCTIONS,
                     self.config.backend),
                )
                if self._cache is not None:
                    self._cache.store(self._fingerprint(name, scale, seed), result)
            span.set_attr(source=source)
            obs.metrics().counter(f"experiments.runs.{source}").inc()
            self._runs[memo_key] = result
        return result

    characterize = run

    # -- trace-backed analysis ----------------------------------------------
    def analyze(
        self,
        name: str,
        tools: Optional[Sequence[str]] = None,
        scale: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> AnalyzeResult:
        """Run the named analysis tools over ``name``'s instruction
        stream, replaying a stored trace instead of re-executing.

        ``tools`` is a list of :mod:`repro.atom.registry` names (default:
        the standard characterization four).  The first analyze of a
        ``(workload, scale, seed)`` records a trace with the compiled
        backend's ``record="trace"`` variant and banks it in the run
        cache; after that any tool set is answered at replay speed.
        Recording always uses the compiled backend regardless of the
        session's configured backend — all backends are bit-identical,
        so the trace (and everything replayed from it) matches what any
        of them would observe.  Unknown tool names raise ``KeyError``.
        """
        from repro.atom.registry import payloads as tool_payloads
        from repro.atom.registry import resolve_tools
        from repro.exec.compiled import CompiledInterpreter
        from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS
        from repro.trace import TraceStore, record_trace, replay_tools
        from repro.trace import trace_fingerprint as _trace_fp

        spec = get_workload(name)  # KeyError for unknown workloads first
        resolved = resolve_tools(tools)  # then for unknown tool names
        scale = self.scale if scale is None else scale
        seed = self.seed if seed is None else seed
        memo_key = (name, scale, seed)
        with obs.span(
            "session.analyze", workload=name, scale=scale, seed=seed,
            tools=",".join(resolved),
        ) as span:
            fingerprint = _trace_fp(name, scale, seed)
            store = (
                TraceStore(self._cache) if self._cache is not None else None
            )
            source = "memo"
            artifact = self._traces.get(memo_key)
            if artifact is None and store is not None:
                artifact = store.load(fingerprint)
                if artifact is not None:
                    source = "cache"
            program = spec.program()
            if artifact is None:
                source = "record"
                artifact = record_trace(
                    program,
                    spec.dataset(scale, seed),
                    max_instructions=DEFAULT_MAX_INSTRUCTIONS,
                    code_key=fingerprint,
                    workload=name,
                    scale=scale,
                    seed=seed,
                )
                if artifact is not None and store is not None:
                    store.store(fingerprint, artifact)
            replayed = artifact is not None
            if replayed:
                self._traces[memo_key] = artifact
                executed = replay_tools(artifact, program, resolved)
            else:
                # Not traceable (budget-crossing or raising run): feed
                # the same tools by direct execution — identical tool
                # state, identical budget/error semantics, no artifact.
                source = "direct"
                interp = CompiledInterpreter(
                    program,
                    spec.dataset(scale, seed),
                    DEFAULT_MAX_INSTRUCTIONS,
                    code_key=fingerprint,
                )
                interp.run(consumers=tuple(resolved.values()))
                executed = interp.executed
            span.set_attr(source=source, instructions=executed)
            obs.metrics().counter(f"session.analyze.{source}").inc()
            return AnalyzeResult(
                workload=name,
                scale=scale,
                seed=seed,
                fingerprint=fingerprint,
                executed=executed,
                source=source,
                replayed=replayed,
                tools=dict(resolved),
                payloads=tool_payloads(resolved),
            )

    def prefetch(self, names: Optional[List[str]] = None) -> None:
        """Materialize runs for ``names`` (default: every workload).

        Cached and memoized runs are reused; the remainder fan out
        across the session's workers.  A run that fails even after the
        session's retries is skipped here (``experiments.
        prefetch_failures``) and surfaces on the eventual serial
        :meth:`run` call for it — prefetch itself never raises.
        """
        from repro.core.parallel import FailedCell, _characterize_task
        from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS

        if names is None:
            names = [spec.name for spec in all_workloads() + spec_workloads()]
        with obs.span("experiment.prefetch", requested=len(names)) as span:
            missing: List[str] = []
            for name in names:
                if (name, self.scale, self.seed) in self._runs:
                    continue
                cached = None
                if self._cache is not None:
                    cached = self._cache.load(
                        self._fingerprint(name, self.scale, self.seed)
                    )
                if isinstance(cached, CharacterizationResult):
                    self._runs[(name, self.scale, self.seed)] = cached
                else:
                    missing.append(name)
            span.set_attr(missing=len(missing), jobs=self.jobs)
            if not missing:
                return
            tasks = [
                (name, self.scale, self.seed, DEFAULT_MAX_INSTRUCTIONS,
                 self.config.backend)
                for name in missing
            ]
            for settled in self.runner().map_settled(_characterize_task, tasks):
                if isinstance(settled, FailedCell):
                    obs.metrics().counter("experiments.prefetch_failures").inc()
                    continue
                name, result = settled
                self._runs[(name, self.scale, self.seed)] = result
                if self._cache is not None:
                    self._cache.store(
                        self._fingerprint(name, self.scale, self.seed), result
                    )

    def characterize_many(
        self,
        specs: Sequence[Tuple[str, Optional[str], Optional[int]]],
        timeout: Optional[float] = None,
        tags: Optional[Sequence[Optional[Dict[str, object]]]] = None,
    ) -> List[object]:
        """One characterization per ``(name, scale, seed)`` triple, batched.

        The batch path of the ``repro serve`` request server: memo and
        run-cache hits are answered inline; the missing runs are
        deduplicated and fanned out over **one** engine map — the
        session's warm keep-alive pool when ``keep_workers`` is set —
        and results come back aligned with ``specs``.  A run that still
        fails after the session's retries occupies its slot as a
        :class:`~repro.core.parallel.FailedCell` marker instead of
        raising, so one bad request cannot take down a batch.  ``None``
        scale/seed default to the session's.  ``timeout`` tightens
        (never loosens) the engine's per-task deadline for this batch;
        it is the hook request deadlines are mapped onto.  Unknown
        workload names raise ``KeyError`` before any work is dispatched.

        With the ``batched`` backend, missing runs are additionally
        grouped by (workload, scale): each group becomes **one**
        lockstep batch task executing all its seeds together through
        :func:`repro.exec.batched.run_batch`, settling per lane — a
        seed that faults mid-batch degrades its own slot to a
        :class:`~repro.core.parallel.FailedCell` while its batchmates
        still land.  Every lane is bit-identical to a scalar run, so
        memo/cache entries stay shared with the other backends.

        ``tags`` is an optional per-spec list of trace attrs (the
        request server passes ``{"request_id": ...}`` per request):
        they are folded into the engine task dispatched for each spec
        and installed as ambient trace context in the worker, so the
        spans a task produces carry the request ID(s) that caused it.
        Several specs landing on one engine task (duplicate specs, or
        seeds grouped into one lockstep batch) merge their IDs into a
        ``request_ids`` list.
        """
        from repro.core.parallel import (
            FailedCell,
            _characterize_batch_task,
            _characterize_task,
        )
        from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS

        keys = [
            (
                name,
                self.scale if scale is None else scale,
                self.seed if seed is None else seed,
            )
            for name, scale, seed in specs
        ]
        for name, _, _ in keys:
            get_workload(name)  # KeyError here, not in a worker

        key_attrs: Dict[Tuple[str, str, int], Dict[str, object]] = {}
        if tags is not None:
            if len(tags) != len(keys):
                raise ValueError(
                    f"tags length {len(tags)} != specs length {len(keys)}"
                )
            for key, tag in zip(keys, tags):
                if not tag:
                    continue
                entry = key_attrs.setdefault(key, {})
                for field, value in tag.items():
                    if field == "request_id":
                        entry.setdefault("_rids", []).append(value)
                    else:
                        entry[field] = value

        def _ctx(task_keys) -> Optional[Dict[str, object]]:
            """The merged trace context for one engine task covering
            ``task_keys``; None when no spec carried tags."""
            rids: List[object] = []
            merged: Dict[str, object] = {}
            for task_key in task_keys:
                entry = key_attrs.get(task_key)
                if not entry:
                    continue
                rids.extend(entry.get("_rids", ()))
                merged.update(
                    {f: v for f, v in entry.items() if f != "_rids"}
                )
            if rids:
                if len(rids) == 1:
                    merged["request_id"] = rids[0]
                else:
                    merged["request_ids"] = rids
            return merged or None
        with obs.span("experiment.batch", requested=len(keys)) as span:
            resolved: Dict[Tuple[str, str, int], object] = {}
            for key in dict.fromkeys(keys):
                result = self._runs.get(key)
                if result is None and self._cache is not None:
                    cached = self._cache.load(self._fingerprint(*key))
                    if isinstance(cached, CharacterizationResult):
                        result = cached
                        self._runs[key] = result
                if result is not None:
                    resolved[key] = result
            missing = [key for key in dict.fromkeys(keys) if key not in resolved]
            span.set_attr(missing=len(missing), jobs=self.jobs)
            if missing:
                batched = self.backend == "batched"
                if batched:
                    groups: Dict[Tuple[str, str], List[int]] = {}
                    for name, scale, seed in missing:
                        groups.setdefault((name, scale), []).append(seed)
                    func = _characterize_batch_task
                    tasks = [
                        (name, scale, tuple(seeds), DEFAULT_MAX_INSTRUCTIONS)
                        for (name, scale), seeds in groups.items()
                    ]
                    contexts = [
                        _ctx([(name, scale, seed) for seed in seeds])
                        for (name, scale), seeds in groups.items()
                    ]
                else:
                    func = _characterize_task
                    tasks = [
                        (name, scale, seed, DEFAULT_MAX_INSTRUCTIONS,
                         self.config.backend)
                        for name, scale, seed in missing
                    ]
                    contexts = [_ctx([key]) for key in missing]
                if not any(contexts):
                    contexts = None
                runner = self._batch_runner()
                saved = runner.timeout
                if timeout is not None:
                    runner.timeout = (
                        timeout if saved is None else min(saved, timeout)
                    )
                try:
                    settled_list = runner.map_settled(
                        func, tasks, contexts=contexts
                    )
                finally:
                    runner.timeout = saved
                if batched:
                    self._settle_batched(tasks, settled_list, resolved)
                else:
                    for key, settled in zip(missing, settled_list):
                        if isinstance(settled, FailedCell):
                            obs.metrics().counter(
                                "experiments.batch_failures"
                            ).inc()
                            resolved[key] = settled
                            continue
                        _name, result = settled
                        self._runs[key] = resolved[key] = result
                        if self._cache is not None:
                            self._cache.store(self._fingerprint(*key), result)
            return [resolved[key] for key in keys]

    def _settle_batched(self, tasks, settled_list, resolved) -> None:
        """Fan lockstep-batch outcomes back onto per-(name, scale, seed)
        slots: a whole-batch failure marks every member seed, a per-lane
        failure marks only its own, and successful lanes are memoized
        and cached exactly like scalar runs (they are bit-identical)."""
        from repro.core.parallel import FailedCell

        for task, settled in zip(tasks, settled_list):
            name, scale, seeds, max_instructions = task
            if isinstance(settled, FailedCell):
                for seed in seeds:
                    obs.metrics().counter("experiments.batch_failures").inc()
                    resolved[(name, scale, seed)] = FailedCell(
                        f"characterize workload={name} scale={scale} "
                        f"seed={seed}",
                        (name, scale, seed, max_instructions),
                        settled.error,
                        settled.attempts,
                    )
                continue
            _name, lanes = settled
            for seed, ok, payload in lanes:
                key = (name, scale, seed)
                if not ok:
                    obs.metrics().counter("experiments.batch_failures").inc()
                    resolved[key] = FailedCell(
                        f"characterize workload={name} scale={scale} "
                        f"seed={seed}",
                        (name, scale, seed, max_instructions),
                        payload,
                        1,
                    )
                    continue
                self._runs[key] = resolved[key] = payload
                if self._cache is not None:
                    self._cache.store(self._fingerprint(*key), payload)

    # -- evaluation ----------------------------------------------------------
    def evaluate(
        self,
        workload: Optional[str] = None,
        platform: Optional[str] = None,
        platforms: Optional[Sequence[str]] = None,
        scale: Optional[str] = None,
        checkpoint: Optional[str] = None,
        strict: bool = False,
    ):
        """Original-vs-transformed evaluation.

        With a ``workload``: one :class:`EvaluationResult` on one
        ``platform`` (default ``"alpha"``), run through the engine so
        the session's retry/fault policy applies.

        Without: the full Table 8 grid over ``platforms`` (default: all
        four Table 7 models) at ``eval_scale``, returning runtime rows
        with :class:`~repro.core.parallel.FailedCell` markers for cells
        that failed past retries (or raising when ``strict=True``).
        ``checkpoint`` streams completed cells to a JSONL file and
        resumes from it, running only the missing cells.
        """
        from repro.core import experiments as E
        from repro.core.parallel import _evaluate_task

        scale = self.config.eval_scale if scale is None else scale
        if workload is not None:
            get_workload(workload)  # KeyError in the caller, not a worker
            key = platform or "alpha"
            _name, _key, evaluation = self.runner(jobs=1).run_one(
                _evaluate_task, (workload, key, scale, self.seed)
            )
            return evaluation
        keys = tuple(platforms) if platforms else DEFAULT_PLATFORMS
        return E.table8_runtimes(
            scale=scale,
            seed=self.seed,
            platform_keys=keys,
            runner=self.runner(),
            checkpoint=checkpoint,
            strict=strict,
        )

    # -- sweeps --------------------------------------------------------------
    def sweep(
        self,
        workload: str,
        field: str,
        values: Sequence[object],
        kind: str = "platform",
        **kwargs,
    ):
        """Sensitivity sweep over one platform or compiler parameter.

        ``kind`` is ``"platform"`` (a :class:`~repro.cpu.PlatformConfig`
        field) or ``"compiler"`` (a :class:`~repro.lang.CompilerOptions`
        field); extra keyword arguments pass through to the underlying
        sweep function.  Points fan out over the session's workers with
        its retry/timeout policy.
        """
        from repro.core import sweeps

        if kind == "platform":
            fn = sweeps.sweep_platform_field
        elif kind == "compiler":
            fn = sweeps.sweep_compiler_flag
        else:
            raise ValueError(f"unknown sweep kind {kind!r} (want platform|compiler)")
        kwargs.setdefault("scale", self.scale)
        kwargs.setdefault("seed", self.seed)
        return fn(workload, field, values, runner=self.runner(), **kwargs)

    # -- lifecycle -----------------------------------------------------------
    def pool_liveness(self) -> List[Dict[str, object]]:
        """Health of the warm keep-alive worker pool, one entry per
        worker (pid, alive, busy, heartbeat age) — what ``/healthz``
        reports as ``workers``.  Empty when no pool is warm."""
        if self._pool is None:
            return []
        return self._pool.liveness()

    def close(self) -> Optional[str]:
        """Release the keep-alive worker pool (if any) and flush the
        trace file when tracing was requested; returns the trace path."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._cache is not None:
            self._cache.flush_stats()
        if not self.config.trace:
            return None
        obs.flush_to(self.config.trace)
        return self.config.trace

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False
