"""Load->branch and branch->load sequence detection (Tables 4 and 5).

The paper's Section 2.2 identifies two problematic patterns:

* **load->branch**: a load whose value feeds, through a tight dependence
  chain, a subsequent conditional branch.  The load's L1 hit latency
  delays branch resolution, so a misprediction penalty grows by the hit
  latency (Table 4(a) reports these loads as a fraction of all executed
  loads together with the misprediction rate of the fed branches).
* **branch->load**: a load with a tight dependence chain that executes
  right after a hard-to-predict branch (>= 5% misprediction rate).  On
  a misprediction the pipeline restarts at the branch target and the
  load's hit latency is fully exposed (Table 4(b)).

Detection is dynamic, exactly like an ATOM analysis routine: a taint
tag flows from each load through up to ``max_chain`` register-to-
register operations; a conditional branch whose condition register
carries taint closes a load->branch sequence.  For branch->load, loads
within ``window`` dynamic instructions after a conditional branch whose
results are consumed within ``consume_window`` instructions are
attributed to that branch, and the >=5% filter is applied at the end
using the hybrid predictor's per-branch rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.branch.predictors import BasePredictor, BranchStats, Hybrid
from repro.exec.trace import TraceEvent
from repro.isa.instructions import Opcode


@dataclass
class SequenceSummary:
    """Final Table 4 style numbers for one workload run."""

    total_loads: int = 0
    load_to_branch_loads: int = 0
    seq_branch_executions: int = 0
    seq_branch_mispredictions: int = 0
    loads_after_hard_branch: int = 0
    overall_branch_misprediction_rate: float = 0.0

    @property
    def load_to_branch_fraction(self) -> float:
        """Table 4(a) column 1."""
        if not self.total_loads:
            return 0.0
        return self.load_to_branch_loads / self.total_loads

    @property
    def seq_branch_misprediction_rate(self) -> float:
        """Table 4(a) column 2: misprediction rate of fed branches."""
        if not self.seq_branch_executions:
            return 0.0
        return self.seq_branch_mispredictions / self.seq_branch_executions

    @property
    def after_hard_branch_fraction(self) -> float:
        """Table 4(b)."""
        if not self.total_loads:
            return 0.0
        return self.loads_after_hard_branch / self.total_loads


@dataclass(slots=True)
class _PendingLoad:
    """A load waiting to learn whether its value is consumed quickly."""

    dest: int  # register key (Reg._hash) of the load's destination
    branch_sids: Tuple[int, ...]
    expires: int


class SequenceProfile:
    """One-pass sequence detector; owns the hybrid branch predictor."""

    #: Taint propagation and the position counter need every event.
    interests = frozenset({"load", "store", "branch", "other", "halt"})

    def __init__(
        self,
        predictor: Optional[BasePredictor] = None,
        max_chain: int = 6,
        window: int = 20,
        consume_window: int = 6,
        hard_threshold: float = 0.05,
    ):
        self.predictor = predictor or Hybrid(aliased=False)
        self.max_chain = max_chain
        self.window = window
        self.consume_window = consume_window
        self.hard_threshold = hard_threshold

        self.total_loads = 0
        self.load_to_branch_loads = 0
        #: Per-branch stats restricted to executions whose condition was
        #: load-tainted (Table 4(a) column 2).
        self.seq_branch_stats: Dict[int, BranchStats] = {}
        #: Per static load: executions feeding a branch and mispredicts
        #: of the fed branch (Table 5 "branch misprediction" column).
        self.load_feeds: Dict[int, BranchStats] = {}
        #: (recent branch sids) -> number of tight-chain loads observed
        #: right after that combination of branches.  The >=5% filter is
        #: applied per combination at summary time (a load counts when
        #: *any* branch shortly before it is hard to predict).
        self.after_branch_loads: Dict[Tuple[int, ...], int] = {}

        # taint maps a register key (Reg._hash — a collision-free int
        # packing, hashable at C speed) to a tuple of (dyn_load_id,
        # load_sid, chain_depth) triples; absent = untainted.
        self._taint: Dict[int, tuple] = {}
        self._counted: Set[int] = set()
        self._counted_floor = 0
        self._dyn_load_id = 0
        self._position = 0
        #: Recent conditional branches as (sid, position), newest last.
        self._recent_branches: List[Tuple[int, int]] = []
        self._pending: List[_PendingLoad] = []

    # -- event handling ---------------------------------------------------------
    # The per-kind handlers below are the real implementation;
    # ``on_event`` only classifies.  The fused fast path
    # (:mod:`repro.atom.fused`) calls the handlers directly, skipping the
    # event object entirely, so their state transitions must stay
    # equivalent to the historical single-``on_event`` tool.

    def on_event(self, event: TraceEvent) -> None:
        kind = event.instr.kind
        if kind == "load":
            self.on_load(event.instr)
        elif kind == "branch":
            self.on_branch(event.instr, event.taken)
        else:
            self.on_step(event.instr)

    def on_load(self, instr) -> None:
        """One executed load: start a taint chain, watch recent branches."""
        position = self._position
        self._position = position + 1
        if self._pending:
            self._consume_pending(instr._read_keys, instr._dest_key, position)
        self.total_loads += 1
        dyn_load_id = self._dyn_load_id + 1
        self._dyn_load_id = dyn_load_id
        self._taint[instr._dest_key] = ((dyn_load_id, instr.sid, 0),)
        if self._recent_branches:
            window = self.window
            recent = tuple(
                sid
                for sid, at in self._recent_branches
                if position - at <= window
            )
            if recent:
                self._pending.append(
                    _PendingLoad(
                        dest=instr._dest_key,
                        branch_sids=recent,
                        expires=position + self.consume_window,
                    )
                )

    def on_branch(self, instr, taken: Optional[bool]) -> None:
        """One executed conditional branch."""
        position = self._position
        self._position = position + 1
        if self._pending:
            self._consume_pending(instr._read_keys, instr._dest_key, position)
        self._on_branch(instr, taken, position)

    def on_step(self, instr) -> None:
        """Any other executed instruction: propagate taint chains."""
        position = self._position
        self._position = position + 1
        if self._pending:
            self._consume_pending(instr._read_keys, instr._dest_key, position)
        dest_key = instr._dest_key
        if dest_key is None:
            # An unconditional jump moves control somewhere a preceding
            # conditional branch never decided, so later loads must not
            # be attributed to branches from before the jump (Table 4(b)
            # measures loads on a *mispredictable* branch's shadow).
            if instr.opcode is Opcode.JMP and self._recent_branches:
                del self._recent_branches[:]
            return
        self._propagate(instr._read_keys, dest_key)

    def _propagate(self, read_keys, dest_key: int) -> None:
        """Taint flow of one register-writing instruction.

        Shared by :meth:`on_step` and the compiled backend, whose
        generated code performs the all-sources-untainted check inline
        and calls in here only when some source carries taint (plus the
        matching dead-destination delete on the untainted path).
        """
        taint = self._taint
        merged: tuple = ()
        max_chain = self.max_chain
        for key in read_keys:
            tags = taint.get(key)
            if tags:
                for dyn_id, sid, depth in tags:
                    if depth < max_chain:
                        merged += ((dyn_id, sid, depth + 1),)
        if merged:
            if len(merged) > 6:
                merged = merged[:6]
            taint[dest_key] = merged
        elif dest_key in taint:
            del taint[dest_key]

    def _on_branch(self, instr, taken: bool, position: int) -> None:
        sid = instr.sid
        correct = self.predictor.access(sid, taken)
        recent = self._recent_branches
        recent.append((sid, position))
        if len(recent) > 6 or position - recent[0][1] > self.window:
            del recent[0]
        tags = self._taint.get(instr._read_keys[0])
        if tags:
            self._branch_tainted(tags, taken, correct, sid)

    def _branch_tainted(self, tags: tuple, taken, correct: bool, sid: int) -> None:
        """Statistics for one branch whose condition carries load taint.

        Shared by :meth:`_on_branch` and the compiled backend (which
        checks the — far more common — untainted case inline).
        """
        stats = self.seq_branch_stats.get(sid)
        if stats is None:
            stats = self.seq_branch_stats[sid] = BranchStats()
        stats.executed += 1
        if taken:
            stats.taken += 1
        if not correct:
            stats.mispredicted += 1
        counted = self._counted
        for dyn_id, load_sid, _depth in tags:
            feed = self.load_feeds.get(load_sid)
            if feed is None:
                feed = self.load_feeds[load_sid] = BranchStats()
            feed.executed += 1
            if not correct:
                feed.mispredicted += 1
            if dyn_id not in counted:
                counted.add(dyn_id)
                self.load_to_branch_loads += 1
        if len(counted) > 100_000:
            self._prune_counted()

    def _prune_counted(self) -> None:
        floor = self._dyn_load_id - 10_000
        self._counted = {d for d in self._counted if d >= floor}
        self._counted_floor = floor

    def _consume_pending(self, read_keys, dest_key, position: int) -> None:
        pending_list = self._pending
        for pending in pending_list:
            dest = pending.dest
            if (
                dest in read_keys
                or position >= pending.expires
                or dest == dest_key
            ):
                break
        else:
            return  # every entry stays pending: no mutation needed
        alive: List[_PendingLoad] = []
        for pending in pending_list:
            if pending.dest in read_keys:
                key = pending.branch_sids
                self.after_branch_loads[key] = self.after_branch_loads.get(key, 0) + 1
                continue  # resolved
            if position >= pending.expires:
                continue  # expired unconsumed: not a tight chain
            if dest_key is not None and dest_key == pending.dest:
                continue  # overwritten before use
            alive.append(pending)
        # In-place so the list object stays stable (the compiled backend
        # binds it once per run and appends through the same object).
        pending_list[:] = alive

    # -- finalization ---------------------------------------------------------------
    def summary(self) -> SequenceSummary:
        """Apply the >=5% hard-branch filter and produce Table 4 numbers."""
        seq_exec = sum(s.executed for s in self.seq_branch_stats.values())
        seq_misp = sum(s.mispredicted for s in self.seq_branch_stats.values())
        hard = 0
        for sids, count in self.after_branch_loads.items():
            if any(
                self.predictor.branch_misprediction_rate(sid) >= self.hard_threshold
                for sid in sids
            ):
                hard += count
        return SequenceSummary(
            total_loads=self.total_loads,
            load_to_branch_loads=self.load_to_branch_loads,
            seq_branch_executions=seq_exec,
            seq_branch_mispredictions=seq_misp,
            loads_after_hard_branch=hard,
            overall_branch_misprediction_rate=self.predictor.misprediction_rate,
        )

    def load_feed_misprediction_rate(self, load_sid: int) -> float:
        """Table 5: misprediction rate of the branches fed by this load."""
        stats = self.load_feeds.get(load_sid)
        return stats.misprediction_rate if stats else 0.0

    # -- merge protocol ---------------------------------------------------------
    def merge(self, other: "SequenceProfile") -> "SequenceProfile":
        """Fold another *completed* run's statistics into this profile.

        Counters, per-branch/per-load statistics, and the predictor's
        prediction statistics are additive; in-flight state (taint,
        pending loads, position) stays this profile's own.  Returns self.
        """
        self.total_loads += other.total_loads
        self.load_to_branch_loads += other.load_to_branch_loads
        for sid, stats in other.seq_branch_stats.items():
            mine = self.seq_branch_stats.get(sid)
            if mine is None:
                self.seq_branch_stats[sid] = mine = BranchStats()
            mine.merge(stats)
        for sid, stats in other.load_feeds.items():
            mine = self.load_feeds.get(sid)
            if mine is None:
                self.load_feeds[sid] = mine = BranchStats()
            mine.merge(stats)
        for key, count in other.after_branch_loads.items():
            self.after_branch_loads[key] = self.after_branch_loads.get(key, 0) + count
        self.predictor.merge(other.predictor)
        return self

    def snapshot(self) -> dict:
        """Plain-data view of the tool state (JSON/pickle friendly)."""
        summary = self.summary()
        return {
            "total_loads": summary.total_loads,
            "load_to_branch_loads": summary.load_to_branch_loads,
            "seq_branch_executions": summary.seq_branch_executions,
            "seq_branch_mispredictions": summary.seq_branch_mispredictions,
            "loads_after_hard_branch": summary.loads_after_hard_branch,
            "overall_branch_misprediction_rate": (
                summary.overall_branch_misprediction_rate
            ),
        }
