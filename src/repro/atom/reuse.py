"""Reuse-distance analysis (the Section 2.1 "chunking" claim).

The paper explains the low L1 miss rates by access locality: "these
programs tend to operate on a chunk of data that fits into the L1 cache
for a period of time before moving on to the next chunk."  This tool
verifies that claim directly: it computes, per memory access, the LRU
*stack distance* in unique 64-byte blocks since the previous touch of
the same block.  If the claim holds, almost all accesses have a reuse
distance below the L1 capacity (1024 blocks for the Table 3 cache) —
equivalently, an LRU cache of that size would hit on them.

The implementation keeps the classic LRU stack as an ordered dict
(move-to-front list); distances above ``max_tracked`` are bucketed as
"far" to bound cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.trace import TraceEvent

#: L1 capacity of the Table 3 cache, in blocks (64 KB / 64 B).
L1_BLOCKS = 1024


@dataclass
class ReuseSummary:
    """Distribution summary of observed reuse distances."""

    accesses: int
    cold: int  # first touches (infinite distance)
    within_l1: int  # distance < L1_BLOCKS
    far: int  # distance >= max_tracked
    median: Optional[int]
    p90: Optional[int]

    @property
    def within_l1_fraction(self) -> float:
        """Fraction of *reuses* that an L1-sized LRU stack would catch."""
        reuses = self.accesses - self.cold
        return self.within_l1 / reuses if reuses else 0.0

    @property
    def cold_fraction(self) -> float:
        return self.cold / self.accesses if self.accesses else 0.0


class ReuseDistance:
    """One-pass LRU stack-distance profiler over memory accesses."""

    def __init__(self, block_size: int = 64, max_tracked: int = 1 << 15):
        self.block_size = block_size
        self.max_tracked = max_tracked
        self._stack: "OrderedDict[int, None]" = OrderedDict()
        #: Only memory traffic has a reuse distance.
        self.interests = frozenset({"load", "store"})
        #: Histogram: power-of-two bucket index -> count.
        self.histogram: Dict[int, int] = {}
        self.cold = 0
        self.far = 0
        self.accesses = 0

    def on_event(self, event: TraceEvent) -> None:
        if event.addr is None:
            return
        self.accesses += 1
        block = event.addr // self.block_size
        stack = self._stack
        if block in stack:
            # Stack distance = number of distinct blocks touched since.
            distance = 0
            found = False
            # Iterate from the most recent end.
            for candidate in reversed(stack):
                if candidate == block:
                    found = True
                    break
                distance += 1
            assert found
            self._record(distance)
            stack.move_to_end(block)
        else:
            self.cold += 1
            stack[block] = None
            if len(stack) > self.max_tracked:
                stack.popitem(last=False)

    def _record(self, distance: int) -> None:
        if distance >= self.max_tracked:
            self.far += 1
            return
        bucket = distance.bit_length()  # 0 -> 0, 1 -> 1, 2-3 -> 2, ...
        self.histogram[bucket] = self.histogram.get(bucket, 0) + 1

    # -- summaries ------------------------------------------------------------
    def _distances_sorted(self) -> List[Tuple[int, int]]:
        """(bucket upper bound, count), ascending."""
        return sorted(
            ((1 << bucket) - 1 if bucket else 0, count)
            for bucket, count in self.histogram.items()
        )

    def _percentile(self, fraction: float) -> Optional[int]:
        total = sum(self.histogram.values())
        if not total:
            return None
        threshold = fraction * total
        running = 0
        for upper, count in self._distances_sorted():
            running += count
            if running >= threshold:
                return upper
        return None

    def summary(self) -> ReuseSummary:
        within = sum(
            count
            for bucket, count in self.histogram.items()
            if (1 << bucket) - 1 < L1_BLOCKS or bucket == 0
        )
        return ReuseSummary(
            accesses=self.accesses,
            cold=self.cold,
            within_l1=within,
            far=self.far,
            median=self._percentile(0.5),
            p90=self._percentile(0.9),
        )
