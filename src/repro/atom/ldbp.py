"""LDBP reclamation analysis: close the characterization->acceleration loop.

Table 4(a) characterizes the problem — hot loads feeding hard-to-predict
branches through tight dependence chains — and the LDBP paper
(Sridhar/Kabylkas/Renau, arXiv:2009.09064) proposes the fix: predict
those branches from the load's value instead of from branch history.
This tool measures how well the fix addresses the measured problem: it
runs the paper's baseline predictor (the un-aliased :class:`Hybrid`)
and the :class:`LoadDrivenBranchPredictor` side by side over *one*
execution and reports, per static branch, whether LDBP reclaims it —
i.e. whether a branch that is hard to predict (>= ``hard_threshold``
misprediction rate) under the baseline drops below the threshold under
LDBP.

Like every ATOM-style tool here it is a plain event consumer, so the
same analysis runs on the switch, compiled, and batched backends and —
because it is registered in :mod:`repro.atom.registry` with
``needs_values=True`` — replays bit-identically from a stored trace via
``Session.analyze(tools=["ldbp"])``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.branch.predictors import Hybrid, LoadDrivenBranchPredictor
from repro.exec.trace import TraceEvent


@dataclass(frozen=True)
class ReclamationRow:
    """One hard-to-predict static branch under both predictors."""

    sid: int
    executed: int
    baseline_mispredicted: int
    ldbp_mispredicted: int
    reclaimed: bool

    @property
    def baseline_rate(self) -> float:
        return self.baseline_mispredicted / self.executed

    @property
    def ldbp_rate(self) -> float:
        return self.ldbp_mispredicted / self.executed


class LdbpReclamation:
    """One-pass baseline-vs-LDBP comparison over a single execution."""

    #: Chain learning needs every event (loads for value snooping,
    #: register writes for taint flow, branches for both predictors).
    interests = frozenset({"load", "store", "branch", "other", "halt"})

    def __init__(
        self,
        hard_threshold: float = 0.05,
        min_executions: int = 16,
        predictor: Optional[LoadDrivenBranchPredictor] = None,
    ):
        self.hard_threshold = hard_threshold
        self.min_executions = min_executions
        self.baseline = Hybrid(aliased=False)
        self.ldbp = predictor or LoadDrivenBranchPredictor()

    # -- event handling ---------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        instr = event.instr
        kind = instr.kind
        if kind == "load":
            self.ldbp.on_load(instr, event.value, event.addr)
        elif kind == "branch":
            self.baseline.access(instr.sid, event.taken)
            self.ldbp.access_branch(instr, event.taken)
        else:  # "store", "other", "halt": taint propagation only
            self.ldbp.on_step(instr)

    # -- results ----------------------------------------------------------------
    def rows(self) -> List[ReclamationRow]:
        """The baseline's hard-to-predict population, sorted by static
        id, each branch marked reclaimed when LDBP pushes it below the
        hard threshold."""
        threshold = self.hard_threshold
        out: List[ReclamationRow] = []
        for sid in sorted(self.baseline.per_branch):
            base = self.baseline.per_branch[sid]
            if base.executed < self.min_executions:
                continue
            base_rate = base.misprediction_rate
            if base_rate < threshold:
                continue
            mine = self.ldbp.per_branch.get(sid)
            ldbp_misp = mine.mispredicted if mine else 0
            out.append(
                ReclamationRow(
                    sid=sid,
                    executed=base.executed,
                    baseline_mispredicted=base.mispredicted,
                    ldbp_mispredicted=ldbp_misp,
                    reclaimed=ldbp_misp / base.executed < threshold,
                )
            )
        return out

    # -- merge protocol ---------------------------------------------------------
    def merge(self, other: "LdbpReclamation") -> "LdbpReclamation":
        """Fold another *completed* run's statistics in; returns self."""
        self.baseline.merge(other.baseline)
        self.ldbp.merge(other.ldbp)
        return self

    def snapshot(self) -> dict:
        """Plain-data view (JSON/pickle friendly), computed only from
        additive statistics so it is stable across merge and replay."""
        rows = self.rows()
        hard_exec = sum(r.executed for r in rows)
        base_misp = sum(r.baseline_mispredicted for r in rows)
        ldbp_misp = sum(r.ldbp_mispredicted for r in rows)
        return {
            "hard_threshold": self.hard_threshold,
            "min_executions": self.min_executions,
            "branches": len(self.baseline.per_branch),
            "hard_branches": len(rows),
            "reclaimed_branches": sum(1 for r in rows if r.reclaimed),
            "hard_executions": hard_exec,
            "baseline_mispredictions": base_misp,
            "ldbp_mispredictions": ldbp_misp,
            "baseline_rate": self.baseline.misprediction_rate,
            "ldbp_rate": self.ldbp.misprediction_rate,
            "precompute_coverage": self.ldbp.precompute_coverage,
        }

    # -- headline numbers -------------------------------------------------------
    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of the hard-to-predict branch population LDBP pulls
        below the hard threshold (the Table-4-style headline)."""
        rows = self.rows()
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.reclaimed) / len(rows)

    @property
    def misprediction_reduction(self) -> float:
        """Relative reduction of mispredictions on the hard population."""
        rows = self.rows()
        base = sum(r.baseline_mispredicted for r in rows)
        if not base:
            return 0.0
        ldbp = sum(r.ldbp_mispredicted for r in rows)
        return 1.0 - ldbp / base
