"""The analysis-tool interface (ATOM's instrumentation contract).

Anything with an ``on_event(TraceEvent)`` method can be attached to an
interpreter run (or a trace replay) — the same way an ATOM analysis
routine is attached to an instrumented binary.  This module documents
that contract as a :class:`typing.Protocol` and provides two adapters:

* :class:`FilteredTool` — forward only the events a predicate accepts
  (e.g. only loads, only one static instruction);
* :class:`TeeTool` — forward one event stream to several tools (useful
  when composing tools into a larger one).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Protocol, runtime_checkable

from repro.exec.trace import TraceEvent


@runtime_checkable
class AnalysisTool(Protocol):
    """Structural interface every trace consumer satisfies."""

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        ...


class FilteredTool:
    """Forwards only events matching ``predicate`` to ``inner``."""

    def __init__(self, inner: AnalysisTool, predicate: Callable[[TraceEvent], bool]):
        self.inner = inner
        self.predicate = predicate
        self.forwarded = 0
        self.dropped = 0

    def on_event(self, event: TraceEvent) -> None:
        if self.predicate(event):
            self.forwarded += 1
            self.inner.on_event(event)
        else:
            self.dropped += 1


class TeeTool:
    """Forwards every event to all wrapped tools."""

    def __init__(self, tools: Iterable[AnalysisTool]):
        self.tools: List[AnalysisTool] = list(tools)

    def on_event(self, event: TraceEvent) -> None:
        for tool in self.tools:
            tool.on_event(event)


def loads_only(event: TraceEvent) -> bool:
    """Predicate: memory-reading events."""
    return event.instr.is_load


def branches_only(event: TraceEvent) -> bool:
    """Predicate: conditional-branch events."""
    return event.instr.is_branch
