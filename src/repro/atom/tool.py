"""The analysis-tool interface (ATOM's instrumentation contract).

Anything with an ``on_event(TraceEvent)`` method can be attached to an
interpreter run (or a trace replay) — the same way an ATOM analysis
routine is attached to an instrumented binary.  This module documents
that contract as a :class:`typing.Protocol` and provides two adapters:

* :class:`FilteredTool` — forward only the events a predicate accepts
  (e.g. only loads, only one static instruction);
* :class:`TeeTool` — forward one event stream to several tools (useful
  when composing tools into a larger one).

Interest masks
--------------

A tool may additionally declare an ``interests`` attribute — an iterable
of event-kind names from :data:`repro.exec.interpreter.EVENT_KINDS`
(``"load"``, ``"store"``, ``"branch"``, ``"other"``, ``"halt"``).  The
interpreter pre-splits its consumer list per kind, so a tool that only
observes loads never sees (and never pays for) the ALU-heavy rest of the
stream; when *nobody* observes a kind, the event object is never even
constructed.  Tools without ``interests`` receive every event, exactly
as before the mask existed.  Declaring interests is purely an
optimization: ``on_event`` must still tolerate any event it is handed,
because trace replays and :class:`TeeTool` may bypass the mask.

Merge protocol
--------------

The standard characterization tools additionally implement
``merge(other)`` (fold the statistics of another *completed* run of the
same tool type into this one; returns ``self``) and ``snapshot()`` (a
plain-data summary of the tool state).  This is what lets
:class:`repro.core.parallel.ParallelRunner` fan runs out across worker
processes and combine the results.  Custom tools that want to join
parallel or multi-seed aggregation should implement both; in-flight
state (anything meaningless across run boundaries) should be excluded.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Protocol, runtime_checkable

from repro.exec.interpreter import ALL_EVENTS, EVENT_KINDS  # noqa: F401
from repro.exec.trace import TraceEvent


@runtime_checkable
class AnalysisTool(Protocol):
    """Structural interface every trace consumer satisfies."""

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        ...


class FilteredTool:
    """Forwards only events matching ``predicate`` to ``inner``.

    Declares no ``interests`` of its own: the predicate is opaque, and
    the forwarded/dropped counters are defined over the full stream.
    """

    def __init__(self, inner: AnalysisTool, predicate: Callable[[TraceEvent], bool]):
        self.inner = inner
        self.predicate = predicate
        self.forwarded = 0
        self.dropped = 0

    def on_event(self, event: TraceEvent) -> None:
        if self.predicate(event):
            self.forwarded += 1
            self.inner.on_event(event)
        else:
            self.dropped += 1


class TeeTool:
    """Forwards every event to all wrapped tools.

    Its ``interests`` are the union of the members' interests (the mask
    of the whole is the mask of its parts); each delivered event still
    goes to *every* member, so members must keep their own guards.
    """

    def __init__(self, tools: Iterable[AnalysisTool]):
        self.tools: List[AnalysisTool] = list(tools)
        interests: frozenset = frozenset()
        for tool in self.tools:
            declared = getattr(tool, "interests", None)
            interests = interests | (
                ALL_EVENTS if declared is None else frozenset(declared)
            )
        self.interests = interests or ALL_EVENTS

    def on_event(self, event: TraceEvent) -> None:
        for tool in self.tools:
            tool.on_event(event)


def loads_only(event: TraceEvent) -> bool:
    """Predicate: memory-reading events."""
    return event.instr.is_load


def branches_only(event: TraceEvent) -> bool:
    """Predicate: conditional-branch events."""
    return event.instr.is_branch
