"""Static-load coverage curves (Figure 2).

The paper's headline characterization: in the BioPerf codes, ~80 static
loads cover >90% of all executed loads, whereas SPEC CPU2000 integer
codes need far more.  This tool counts dynamic executions per static
load and produces the cumulative-coverage curve of Figure 2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exec.trace import TraceEvent


class LoadCoverage:
    """Per-static-load execution counts and coverage curves."""

    #: Only loads matter; interest-masked dispatch skips everything else.
    interests = frozenset({"load"})

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.total_loads = 0

    def on_event(self, event: TraceEvent) -> None:
        instr = event.instr
        if instr.is_load:
            self.total_loads += 1
            sid = instr.sid
            self.counts[sid] = self.counts.get(sid, 0) + 1

    # -- merge protocol -------------------------------------------------------
    def merge(self, other: "LoadCoverage") -> "LoadCoverage":
        """Fold another run's counters into this tool; returns self."""
        self.total_loads += other.total_loads
        counts = self.counts
        for sid, count in other.counts.items():
            counts[sid] = counts.get(sid, 0) + count
        return self

    def snapshot(self) -> dict:
        """Plain-data view of the tool state (JSON/pickle friendly)."""
        return {"total_loads": self.total_loads, "counts": dict(self.counts)}

    # -- Figure 2 views -------------------------------------------------------
    @property
    def static_load_count(self) -> int:
        """Number of distinct static loads that executed at least once."""
        return len(self.counts)

    def sorted_counts(self) -> List[Tuple[int, int]]:
        """(sid, count) pairs, most frequently executed first."""
        return sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))

    def curve(self) -> List[float]:
        """Cumulative coverage: element k-1 is the fraction of dynamic
        loads covered by the k most frequent static loads."""
        if not self.total_loads:
            return []
        out: List[float] = []
        cumulative = 0
        for _, count in self.sorted_counts():
            cumulative += count
            out.append(cumulative / self.total_loads)
        return out

    def coverage_at(self, num_static_loads: int) -> float:
        """Fraction of dynamic loads covered by the top N static loads."""
        curve = self.curve()
        if not curve:
            return 0.0
        if num_static_loads <= 0:
            return 0.0
        index = min(num_static_loads, len(curve)) - 1
        return curve[index]

    def loads_for_coverage(self, fraction: float) -> int:
        """Minimum number of static loads covering ``fraction`` of the
        dynamic loads (paper: ~80 for 90% in BioPerf)."""
        for position, covered in enumerate(self.curve(), start=1):
            if covered >= fraction:
                return position
        return self.static_load_count
