"""ATOM-style instrumentation and characterization tools.

The paper builds its Section 2 characterization with ATOM [17]: the
binary is instrumented once and multiple analysis routines observe
every executed instruction.  Here the interpreter plays the binary and
each :class:`AnalysisTool` plays an ATOM analysis routine; the
:func:`repro.atom.runner.characterize` helper runs a standard set of
tools in a single pass.
"""

from repro.atom.branchprofile import BranchProfile
from repro.atom.coverage import LoadCoverage
from repro.atom.fused import FusedStandardTools
from repro.atom.instmix import InstructionMix
from repro.atom.ldbp import LdbpReclamation, ReclamationRow
from repro.atom.loadprofile import CacheSim
from repro.atom.registry import (
    STANDARD_TOOLS,
    ToolSpec,
    get_tool,
    register_tool,
    resolve_tools,
    tool_names,
    tool_payload,
)
from repro.atom.reuse import ReuseDistance
from repro.atom.runner import CharacterizationResult, characterize
from repro.atom.sequences import SequenceProfile
from repro.atom.tool import AnalysisTool, FilteredTool, TeeTool

__all__ = [
    "AnalysisTool",
    "BranchProfile",
    "CacheSim",
    "CharacterizationResult",
    "FilteredTool",
    "FusedStandardTools",
    "InstructionMix",
    "LdbpReclamation",
    "LoadCoverage",
    "ReclamationRow",
    "ReuseDistance",
    "STANDARD_TOOLS",
    "SequenceProfile",
    "TeeTool",
    "ToolSpec",
    "characterize",
    "get_tool",
    "register_tool",
    "resolve_tools",
    "tool_names",
    "tool_payload",
]
