"""Instruction-mix profiling (Figure 1 and Table 1).

Counts executed instructions by the paper's categories — loads, stores,
conditional branches, and other — plus the floating-point breakdown
(total FP instructions and FP loads) that Table 1 and Section 2 report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.exec.trace import TraceEvent
from repro.isa.instructions import Opcode


@dataclass
class MixCounts:
    """Raw category counters."""

    total: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0  # conditional branches only, as in Figure 1
    fp_total: int = 0
    fp_loads: int = 0


class InstructionMix:
    """One-pass instruction-mix tool."""

    #: Total-count accounting needs every event kind.
    interests = frozenset({"load", "store", "branch", "other", "halt"})

    def __init__(self) -> None:
        self.counts = MixCounts()

    def on_event(self, event: TraceEvent) -> None:
        counts = self.counts
        instr = event.instr
        counts.total += 1
        if instr.is_load:
            counts.loads += 1
            if instr.opcode is Opcode.FLOAD:
                counts.fp_total += 1
                counts.fp_loads += 1
        elif instr.is_store:
            counts.stores += 1
            if instr.opcode is Opcode.FSTORE:
                counts.fp_total += 1
        elif instr.opcode is Opcode.BR:
            counts.branches += 1
        elif instr.is_fp:
            counts.fp_total += 1

    # -- merge protocol -----------------------------------------------------
    def merge(self, other: "InstructionMix") -> "InstructionMix":
        """Fold another run's counters into this tool; returns self."""
        mine, theirs = self.counts, other.counts
        mine.total += theirs.total
        mine.loads += theirs.loads
        mine.stores += theirs.stores
        mine.branches += theirs.branches
        mine.fp_total += theirs.fp_total
        mine.fp_loads += theirs.fp_loads
        return self

    def snapshot(self) -> dict:
        """Plain-data view of the tool state (JSON/pickle friendly)."""
        return asdict(self.counts)

    # -- Figure 1 / Table 1 views -----------------------------------------------
    @property
    def load_fraction(self) -> float:
        return self.counts.loads / self.counts.total if self.counts.total else 0.0

    @property
    def store_fraction(self) -> float:
        return self.counts.stores / self.counts.total if self.counts.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.counts.branches / self.counts.total if self.counts.total else 0.0

    @property
    def other_fraction(self) -> float:
        counts = self.counts
        if not counts.total:
            return 0.0
        other = counts.total - counts.loads - counts.stores - counts.branches
        return other / counts.total

    @property
    def fp_fraction(self) -> float:
        """Table 1: percentage of executed instructions that are FP."""
        return self.counts.fp_total / self.counts.total if self.counts.total else 0.0

    @property
    def fp_load_fraction(self) -> float:
        """Section 2: FP loads as a fraction of executed instructions."""
        return self.counts.fp_loads / self.counts.total if self.counts.total else 0.0
