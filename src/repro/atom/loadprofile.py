"""Cache simulation with per-static-load statistics (Table 2, Table 5).

Feeds every memory access through a :class:`repro.cache.CacheHierarchy`
(Table 3 configuration by default) and additionally attributes L1
misses to static load ids so that Table 5's per-load "L1 miss rate"
column can be produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.exec.trace import TraceEvent


@dataclass
class PerLoadCacheStats:
    """Cache behaviour of one static load."""

    accesses: int = 0
    l1_misses: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """ATOM-style cache tool: hierarchy stats + per-load attribution."""

    def __init__(self, hierarchy: Optional[CacheHierarchy] = None):
        self.hierarchy = hierarchy or CacheHierarchy()
        self.per_load: Dict[int, PerLoadCacheStats] = {}

    def on_event(self, event: TraceEvent) -> None:
        instr = event.instr
        if event.addr is None:
            return
        if instr.is_load:
            level = self.hierarchy.access(event.addr, is_write=False, is_load=True)
            stats = self.per_load.get(instr.sid)
            if stats is None:
                stats = self.per_load[instr.sid] = PerLoadCacheStats()
            stats.accesses += 1
            if level > 1:
                stats.l1_misses += 1
        else:
            self.hierarchy.access(event.addr, is_write=True, is_load=False)

    def load_l1_miss_rate(self, sid: int) -> float:
        stats = self.per_load.get(sid)
        return stats.l1_miss_rate if stats else 0.0
