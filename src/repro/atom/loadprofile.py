"""Cache simulation with per-static-load statistics (Table 2, Table 5).

Feeds every memory access through a :class:`repro.cache.CacheHierarchy`
(Table 3 configuration by default) and additionally attributes L1
misses to static load ids so that Table 5's per-load "L1 miss rate"
column can be produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.exec.trace import TraceEvent


@dataclass(slots=True)
class PerLoadCacheStats:
    """Cache behaviour of one static load."""

    accesses: int = 0
    l1_misses: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """ATOM-style cache tool: hierarchy stats + per-load attribution."""

    #: Only memory traffic reaches the hierarchy.
    interests = frozenset({"load", "store"})

    def __init__(self, hierarchy: Optional[CacheHierarchy] = None):
        self.hierarchy = hierarchy or CacheHierarchy()
        self.per_load: Dict[int, PerLoadCacheStats] = {}

    def on_event(self, event: TraceEvent) -> None:
        instr = event.instr
        if event.addr is None:
            return
        if instr.is_load:
            level = self.hierarchy.access(event.addr, is_write=False, is_load=True)
            stats = self.per_load.get(instr.sid)
            if stats is None:
                stats = self.per_load[instr.sid] = PerLoadCacheStats()
            stats.accesses += 1
            if level > 1:
                stats.l1_misses += 1
        else:
            self.hierarchy.access(event.addr, is_write=True, is_load=False)

    def load_l1_miss_rate(self, sid: int) -> float:
        stats = self.per_load.get(sid)
        return stats.l1_miss_rate if stats else 0.0

    # -- merge protocol -------------------------------------------------------
    def merge(self, other: "CacheSim") -> "CacheSim":
        """Fold another run's *statistics* into this tool; returns self.

        Hit/miss counters and per-load attribution are additive; the
        simulated cache contents stay this tool's own (merging is meant
        for aggregating completed, independent runs, not for resuming).
        """
        for sid, theirs in other.per_load.items():
            mine = self.per_load.get(sid)
            if mine is None:
                mine = self.per_load[sid] = PerLoadCacheStats()
            mine.accesses += theirs.accesses
            mine.l1_misses += theirs.l1_misses
        self.hierarchy.merge(other.hierarchy)
        return self

    def snapshot(self) -> dict:
        """Plain-data view of the tool state (JSON/pickle friendly)."""
        hierarchy = self.hierarchy
        return {
            "per_load": {
                sid: (stats.accesses, stats.l1_misses)
                for sid, stats in self.per_load.items()
            },
            "load_accesses": hierarchy.load_accesses,
            "load_l1_misses": hierarchy.load_l1_misses,
            "load_l2_misses": hierarchy.load_l2_misses,
            "memory_accesses": hierarchy.memory_accesses,
        }
