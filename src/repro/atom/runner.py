"""One-pass characterization driver.

Mirrors the paper's methodology: instrument once, run once, let every
analysis tool observe the same dynamic instruction stream.  The result
object exposes the per-table views used by the benchmark harness and by
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro import obs
from repro.atom.coverage import LoadCoverage
from repro.atom.instmix import InstructionMix
from repro.atom.loadprofile import CacheSim
from repro.atom.sequences import SequenceProfile
from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS
from repro.isa.program import Program


@dataclass
class LoadProfileRow:
    """One row of a Table 5 style per-load profile."""

    sid: int
    frequency: float  # fraction of all executed loads
    l1_miss_rate: float
    branch_misprediction_rate: float  # of the branches this load feeds
    line: int
    array: str

    def __str__(self) -> str:
        return (
            f"load {self.sid:5d}  freq {self.frequency:6.2%}  "
            f"L1 miss {self.l1_miss_rate:6.2%}  "
            f"br-misp {self.branch_misprediction_rate:6.2%}  "
            f"line {self.line:4d}  array {self.array}"
        )


@dataclass
class CharacterizationResult:
    """All tools after a single instrumented run."""

    program: Program
    mix: InstructionMix
    coverage: LoadCoverage
    cache: CacheSim
    sequences: SequenceProfile
    executed: int

    def load_profile(self, top: int = 10) -> List[LoadProfileRow]:
        """Table 5: the ``top`` most frequently executed static loads."""
        rows: List[LoadProfileRow] = []
        total = self.coverage.total_loads or 1
        by_sid = {i.sid: i for i in self.program.all_instructions() if i.is_load}
        for sid, count in self.coverage.sorted_counts()[:top]:
            instr = by_sid.get(sid)
            rows.append(
                LoadProfileRow(
                    sid=sid,
                    frequency=count / total,
                    l1_miss_rate=self.cache.load_l1_miss_rate(sid),
                    branch_misprediction_rate=(
                        self.sequences.load_feed_misprediction_rate(sid)
                    ),
                    line=instr.line if instr else 0,
                    array=instr.array if instr else "?",
                )
            )
        return rows


def characterize(
    program: Program,
    bindings: Optional[Mapping[str, object]] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    tools: Optional[Dict[str, object]] = None,
    workload: Optional[str] = None,
    backend: Optional[str] = None,
    code_key: Optional[str] = None,
) -> CharacterizationResult:
    """Run ``program`` once with the full tool set attached.

    ``tools`` may override individual tools (keys: ``mix``, ``coverage``,
    ``cache``, ``sequences``), e.g. to supply a custom cache hierarchy.
    ``workload`` is a telemetry-only label attached to the span this
    run emits when tracing is enabled (see :mod:`repro.obs`).
    ``backend`` selects the execution engine (compiled/switch/batched;
    default per :func:`repro.exec.backends.resolve_backend`);
    ``code_key`` is a stable run identity (the workload fingerprint)
    letting the compiled backend share generated code across equal
    programs.
    """
    from repro.exec.backends import make_interpreter, resolve_backend

    tools = tools or {}
    mix = tools.get("mix") or InstructionMix()
    coverage = tools.get("coverage") or LoadCoverage()
    cache = tools.get("cache") or CacheSim()
    sequences = tools.get("sequences") or SequenceProfile()
    backend = resolve_backend(backend)
    with obs.span(
        "characterize", workload=workload or "?", backend=backend
    ) as span:
        interp = make_interpreter(
            program,
            bindings,
            max_instructions=max_instructions,
            backend=backend,
            code_key=code_key,
        )
        executed = interp.run(consumers=(mix, coverage, cache, sequences))
        span.set_attr(instructions=executed)
    return CharacterizationResult(
        program=program,
        mix=mix,
        coverage=coverage,
        cache=cache,
        sequences=sequences,
        executed=executed,
    )


def characterize_batch(
    program: Program,
    bindings_list: List[Mapping[str, object]],
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    workload: Optional[str] = None,
    code_key: Optional[str] = None,
) -> List[object]:
    """Characterize B datasets of one ``program`` in one lockstep batch.

    The batched-backend counterpart of :func:`characterize`: each
    binding set becomes one lane of :func:`repro.exec.batched.run_batch`
    with the full standard tool set attached, and lanes that stay
    converged pay the interpretation loop once for the whole batch.
    The returned list is aligned with ``bindings_list``; each element is
    either a :class:`CharacterizationResult` (bit-identical to what a
    scalar :func:`characterize` call over the same bindings produces)
    or the exception that run raised (``BudgetExceeded``, a fault, ...)
    so callers can settle per-lane exactly like per-task.
    """
    from repro.exec.batched import run_batch

    def _tools():
        return (InstructionMix(), LoadCoverage(), CacheSim(), SequenceProfile())

    with obs.span(
        "characterize_batch",
        workload=workload or "?",
        batch=len(bindings_list),
    ) as span:
        lanes = run_batch(
            program,
            bindings_list,
            consumers_factory=_tools,
            max_instructions=max_instructions,
            code_key=code_key,
        )
        outcomes: List[object] = []
        lockstep = 0
        for lane in lanes:
            if lane.lockstep:
                lockstep += 1
            if lane.error is not None:
                outcomes.append(lane.error)
                continue
            mix, coverage, cache, sequences = lane.consumers
            outcomes.append(
                CharacterizationResult(
                    program=program,
                    mix=mix,
                    coverage=coverage,
                    cache=cache,
                    sequences=sequences,
                    executed=lane.interp.executed,
                )
            )
        span.set_attr(lockstep=lockstep)
    return outcomes
