"""Per-branch behaviour profiling.

A small companion to :class:`repro.atom.sequences.SequenceProfile`: it
reports, per static conditional branch, the execution count, taken
rate, and misprediction rate under a chosen predictor, mapped back to
source lines — the data behind statements like "the IF statements have
a high branch misprediction rate" (Section 3.1) and Table 5's
misprediction column, viewed from the branch side instead of the load
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.branch.predictors import BasePredictor, Hybrid
from repro.exec.trace import TraceEvent


@dataclass
class BranchRow:
    """Profile of one static conditional branch."""

    sid: int
    line: int
    executed: int
    taken_rate: float
    misprediction_rate: float

    def __str__(self) -> str:
        return (
            f"branch {self.sid:5d}  line {self.line:4d}  "
            f"exec {self.executed:8d}  taken {self.taken_rate:6.1%}  "
            f"mispredict {self.misprediction_rate:6.1%}"
        )


class BranchProfile:
    """One-pass per-branch statistics under a predictor."""

    #: Only conditional branches train the predictor.
    interests = frozenset({"branch"})

    def __init__(self, predictor: Optional[BasePredictor] = None):
        self.predictor = predictor or Hybrid(aliased=False)
        self._lines: Dict[int, int] = {}

    def on_event(self, event: TraceEvent) -> None:
        instr = event.instr
        if not instr.is_branch:
            return
        self.predictor.access(instr.sid, event.taken)
        if instr.sid not in self._lines:
            self._lines[instr.sid] = instr.line

    # -- merge protocol -------------------------------------------------------
    def merge(self, other: "BranchProfile") -> "BranchProfile":
        """Fold another run's statistics into this profile; returns self."""
        self.predictor.merge(other.predictor)
        for sid, line in other._lines.items():
            self._lines.setdefault(sid, line)
        return self

    def snapshot(self) -> dict:
        """Plain-data view of the tool state (JSON/pickle friendly)."""
        return {
            "overall_misprediction_rate": self.overall_misprediction_rate,
            "per_branch": {
                sid: (stats.executed, stats.taken, stats.mispredicted)
                for sid, stats in self.predictor.per_branch.items()
            },
        }

    @property
    def overall_misprediction_rate(self) -> float:
        return self.predictor.misprediction_rate

    def rows(
        self,
        top: int = 10,
        min_executions: int = 1,
        hard_only: bool = False,
        hard_threshold: float = 0.05,
    ) -> List[BranchRow]:
        """Branches ranked by execution count.

        With ``hard_only`` the output keeps only branches whose
        misprediction rate clears ``hard_threshold`` — the population
        the paper's whole argument is about.
        """
        stats = self.predictor.per_branch
        ranked = sorted(
            (sid for sid, s in stats.items() if s.executed >= min_executions),
            key=lambda sid: -stats[sid].executed,
        )
        out: List[BranchRow] = []
        for sid in ranked:
            record = stats[sid]
            if hard_only and record.misprediction_rate < hard_threshold:
                continue
            out.append(
                BranchRow(
                    sid=sid,
                    line=self._lines.get(sid, 0),
                    executed=record.executed,
                    taken_rate=record.taken_rate,
                    misprediction_rate=record.misprediction_rate,
                )
            )
            if len(out) >= top:
                break
        return out
