"""Name -> analysis-tool registry: one place to resolve tools.

The CLI, the serve layer, and trace replay all accept analysis tools
*by name*; this module is the single mapping from those names to tool
factories, so "which tools exist" has one answer everywhere.  The
standard four-tool characterization set (``repro.atom.fused`` fuses
exactly these) is ``STANDARD_TOOLS``; the remaining entries are the
paper's companion analyses (branch/value predictors, reuse distance).

Every entry also knows how to render its tool's final state as a
plain-data payload (``tool_payload``) — the JSON-able dict the serve
layer returns from ``POST /v1/analyze`` and the differential tests
compare bit-for-bit between direct execution and trace replay — and
whether replay must materialize loaded *values* for it
(``needs_values``; see :mod:`repro.trace.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.atom.branchprofile import BranchProfile
from repro.atom.coverage import LoadCoverage
from repro.atom.instmix import InstructionMix
from repro.atom.ldbp import LdbpReclamation
from repro.atom.loadprofile import CacheSim
from repro.atom.reuse import ReuseDistance
from repro.atom.sequences import SequenceProfile
from repro.valuepred.tool import ValuePredictability

__all__ = [
    "STANDARD_TOOLS",
    "ToolSpec",
    "get_tool",
    "register_tool",
    "resolve_tools",
    "tool_names",
    "tool_payload",
]


@dataclass(frozen=True)
class ToolSpec:
    """One registered analysis tool."""

    name: str
    factory: Callable[[], object]
    payload: Callable[[object], dict]
    #: Whether trace replay must decode loaded values for this tool
    #: (only value-prediction analyses read ``event.value``; skipping
    #: the value columns makes every other replay cheaper).
    needs_values: bool
    description: str


_REGISTRY: Dict[str, ToolSpec] = {}


def register_tool(
    name: str,
    factory: Callable[[], object],
    payload: Callable[[object], dict],
    needs_values: bool = True,
    description: str = "",
) -> ToolSpec:
    """Register (or replace) a tool under ``name``.

    ``needs_values`` defaults to True — the safe choice for third-party
    tools; builtin entries opt out when they never read loaded values.
    """
    spec = ToolSpec(
        name=name,
        factory=factory,
        payload=payload,
        needs_values=needs_values,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def tool_names() -> List[str]:
    """Registered names, in registration order."""
    return list(_REGISTRY)


def get_tool(name: str) -> ToolSpec:
    """The spec registered under ``name``; KeyError names the options."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown analysis tool {name!r}; expected one of "
            f"{tool_names()}"
        )
    return spec


def resolve_tools(names: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Instantiate one tool per name, preserving request order.

    ``None`` means the standard characterization set.  Duplicate names
    raise (two instances of one tool in a single analysis would
    double-count), as does any unknown name.
    """
    if names is None:
        names = STANDARD_TOOLS
    tools: Dict[str, object] = {}
    for name in names:
        if name in tools:
            raise KeyError(f"duplicate analysis tool {name!r}")
        tools[name] = get_tool(name).factory()
    return tools


def tool_payload(name: str, tool: object) -> dict:
    """Plain-data (JSON-able) view of a resolved tool's final state."""
    return get_tool(name).payload(tool)


def payloads(tools: Mapping[str, object]) -> Dict[str, dict]:
    """``tool_payload`` over a whole resolved-tool mapping."""
    return {name: tool_payload(name, tool) for name, tool in tools.items()}


def _snapshot(tool: object) -> dict:
    return tool.snapshot()


def _reuse_payload(tool: ReuseDistance) -> dict:
    summary = tool.summary()
    return {
        "accesses": summary.accesses,
        "cold": summary.cold,
        "within_l1": summary.within_l1,
        "far": summary.far,
        "median": summary.median,
        "p90": summary.p90,
        "histogram": dict(tool.histogram),
    }


def _value_payload(tool: ValuePredictability) -> dict:
    return {
        "overall_accuracy": tool.overall_accuracy,
        "per_load": {
            sid: (stats.predictions, stats.correct)
            for sid, stats in tool.predictor.per_load.items()
        },
    }


register_tool(
    "mix", InstructionMix, _snapshot, needs_values=False,
    description="instruction mix by category (Figure 1 / Table 1)",
)
register_tool(
    "coverage", LoadCoverage, _snapshot, needs_values=False,
    description="per-static-load execution counts (Figure 2)",
)
register_tool(
    "cache", CacheSim, _snapshot, needs_values=False,
    description="cache hierarchy simulation with per-load misses (Table 2/5)",
)
register_tool(
    "sequences", SequenceProfile, _snapshot, needs_values=False,
    description="load->branch / branch->load sequence detection (Table 4)",
)
register_tool(
    "branch", BranchProfile, _snapshot, needs_values=False,
    description="per-branch taken/misprediction profile under Hybrid",
)
register_tool(
    "reuse", ReuseDistance, _reuse_payload, needs_values=False,
    description="LRU stack reuse-distance histogram (Section 2.1)",
)
register_tool(
    "value", ValuePredictability, _value_payload, needs_values=True,
    description="per-load value predictability (Section 6)",
)
register_tool(
    "ldbp", LdbpReclamation, _snapshot, needs_values=True,
    description="LDBP reclamation of the hard-to-predict branch "
    "population (Table 4 follow-up; docs/branch-prediction.md)",
)

#: The standard four-tool characterization set, in the order
#: :func:`repro.atom.runner.characterize` attaches them; the fused
#: dispatcher (:mod:`repro.atom.fused`) derives its exact-class tuple
#: from these entries.
STANDARD_TOOLS = ("mix", "coverage", "cache", "sequences")
