"""Fused dispatch for the standard four-tool characterization set.

``characterize`` (and anything else that attaches exactly
:class:`InstructionMix` + :class:`LoadCoverage` + :class:`CacheSim` +
:class:`SequenceProfile`) used to pay four consumer calls per dynamic
instruction, each re-classifying the same instruction.  The interpreter
now collapses that case into one :class:`FusedStandardTools` consumer:
the instruction is classified once and each tool's state transition is
applied inline, writing into the *original* tool objects — the final
tool state is bit-for-bit identical to unfused dispatch, only cheaper.

Fusion is conservative: it triggers only for exact instances of the four
default classes (a subclass may override ``on_event``), each appearing
exactly once.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.atom.coverage import LoadCoverage
from repro.atom.instmix import InstructionMix
from repro.atom.loadprofile import CacheSim, PerLoadCacheStats
from repro.atom.sequences import SequenceProfile
from repro.exec.trace import TraceEvent
from repro.isa.instructions import Opcode


class FusedStandardTools:
    """One consumer that advances all four standard tools per event."""

    interests = frozenset({"load", "store", "branch", "other", "halt"})

    def __init__(
        self,
        mix: InstructionMix,
        coverage: LoadCoverage,
        cache: CacheSim,
        sequences: SequenceProfile,
    ):
        self.mix = mix
        self.coverage = coverage
        self.cache = cache
        self.sequences = sequences

    def on_event(self, event: TraceEvent) -> None:
        instr = event.instr
        kind = instr.kind
        if kind == "load":
            self.load(instr, event.addr, event.value)
        elif kind == "store":
            self.store(instr, event.addr)
        elif kind == "branch":
            self.branch(instr, event.taken)
        else:  # "other" and "halt"
            self.step(instr)

    # -- direct entry points ------------------------------------------------
    # The interpreter calls these straight from its dispatch loop when the
    # fused path is active, skipping TraceEvent construction entirely.

    def load(self, instr, addr: int, value) -> None:
        counts = self.mix.counts
        counts.total += 1
        counts.loads += 1
        if instr.opcode is Opcode.FLOAD:
            counts.fp_total += 1
            counts.fp_loads += 1
        coverage = self.coverage
        coverage.total_loads += 1
        sid = instr.sid
        cov_counts = coverage.counts
        cov_counts[sid] = cov_counts.get(sid, 0) + 1
        cache = self.cache
        level = cache.hierarchy.access(addr, is_write=False, is_load=True)
        stats = cache.per_load.get(sid)
        if stats is None:
            stats = cache.per_load[sid] = PerLoadCacheStats()
        stats.accesses += 1
        if level > 1:
            stats.l1_misses += 1
        self.sequences.on_load(instr)

    def store(self, instr, addr) -> None:
        counts = self.mix.counts
        counts.total += 1
        counts.stores += 1
        if instr.opcode is Opcode.FSTORE:
            counts.fp_total += 1
        if addr is not None:
            self.cache.hierarchy.access(addr, is_write=True, is_load=False)
        self.sequences.on_step(instr)

    def branch(self, instr, taken) -> None:
        counts = self.mix.counts
        counts.total += 1
        counts.branches += 1
        self.sequences.on_branch(instr, taken)

    def step(self, instr) -> None:
        counts = self.mix.counts
        counts.total += 1
        if instr.is_fp:
            counts.fp_total += 1
        self.sequences.on_step(instr)


class FusedDispatchCounter:
    """Telemetry shim over :class:`FusedStandardTools`.

    Counts dispatches per event kind while delegating to the fused
    entry points unchanged.  The interpreter installs it only when
    telemetry is enabled, so the fused fast path stays shim-free in
    normal runs; the counts feed the ``interp.events.*`` metrics and
    the ``interpret`` span attributes.
    """

    __slots__ = ("fused", "loads", "stores", "branches", "steps")

    interests = FusedStandardTools.interests

    def __init__(self, fused: FusedStandardTools):
        self.fused = fused
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.steps = 0

    def load(self, instr, addr: int, value) -> None:
        self.loads += 1
        self.fused.load(instr, addr, value)

    def store(self, instr, addr) -> None:
        self.stores += 1
        self.fused.store(instr, addr)

    def branch(self, instr, taken) -> None:
        self.branches += 1
        self.fused.branch(instr, taken)

    def step(self, instr) -> None:
        self.steps += 1
        self.fused.step(instr)

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.branches + self.steps

    def per_kind(self) -> dict:
        return {
            "load": self.loads,
            "store": self.stores,
            "branch": self.branches,
            "other": self.steps,
        }


#: The exact classes the interpreter is willing to fuse: the standard
#: registry entries (mix, coverage, cache, sequences), in order.  The
#: registry owns name->factory resolution; fusion stays keyed on the
#: exact classes those factories construct.
def _standard_classes() -> tuple:
    from repro.atom.registry import STANDARD_TOOLS, get_tool

    return tuple(get_tool(name).factory for name in STANDARD_TOOLS)


_STANDARD = _standard_classes()


def fuse_standard_tools(
    consumers: Sequence[object],
) -> Optional[FusedStandardTools]:
    """Return a fused consumer for exactly the standard four tools.

    ``consumers`` may list the tools in any order; returns None when the
    set is anything else (wrong length, duplicates, subclasses, or
    unrelated consumers), in which case dispatch stays unfused.
    """
    if len(consumers) != 4:
        return None
    found: List[Optional[object]] = [None, None, None, None]
    for consumer in consumers:
        for position, standard_type in enumerate(_STANDARD):
            if type(consumer) is standard_type:
                if found[position] is not None:
                    return None
                found[position] = consumer
                break
        else:
            return None
    mix, coverage, cache, sequences = found
    return FusedStandardTools(mix, coverage, cache, sequences)
