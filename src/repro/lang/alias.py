"""Static memory-disambiguation (may-alias) models.

The paper's central compiler observation (Figure 5) is that hoisting a
load across a store requires the compiler to *prove* the two memory
references are independent, and that for C array parameters such proofs
are usually unavailable.  We expose that choice as an explicit model:

* :class:`MayAliasModel` — the realistic C default: references to two
  *different* arrays may still alias (arrays reach the hot function as
  pointer parameters, so the compiler has no independence proof).
  References to the *same* array alias only when their symbolic index
  (register, constant offset) may overlap.
* :class:`RestrictModel` — every named array is independent of every
  other, as if all pointer parameters carried C99 ``restrict``.  This is
  the mode the paper's Section 5 Itanium discussion enables.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction


class AliasModel:
    """Interface: decide whether two memory references may alias."""

    #: Short name used by reports and CLI flags.
    name = "abstract"

    def may_alias(self, a: Instruction, b: Instruction) -> bool:
        raise NotImplementedError

    def store_blocks_load(self, store: Instruction, load: Instruction) -> bool:
        """May moving ``load`` across ``store`` change its value?"""
        return self.may_alias(store, load)


def _same_symbolic_address(a: Instruction, b: Instruction) -> bool:
    """True when both references name the same array element symbolically
    (same array, same index register, same constant offset)."""
    return (
        a.array == b.array
        and len(a.srcs) > 0
        and len(b.srcs) > 0
        and a.srcs[-1] == b.srcs[-1]
        and (a.imm or 0) == (b.imm or 0)
    )


class MayAliasModel(AliasModel):
    """C-like conservative disambiguation.

    Distinct arrays may alias (they are pointer parameters as far as the
    compiler can tell).  Same-array references with the same index
    register and *different* constant offsets are provably distinct
    (``a[k-1]`` vs ``a[k]``); anything else must be assumed to overlap.
    """

    name = "may-alias"

    def may_alias(self, a: Instruction, b: Instruction) -> bool:
        if not (a.is_mem and b.is_mem):
            return False
        if a.array != b.array:
            return True
        if a.srcs and b.srcs and a.srcs[-1] == b.srcs[-1]:
            return (a.imm or 0) == (b.imm or 0)
        return True


class RestrictModel(AliasModel):
    """Full inter-array independence (all arrays ``restrict``-qualified)."""

    name = "restrict"

    def may_alias(self, a: Instruction, b: Instruction) -> bool:
        if not (a.is_mem and b.is_mem):
            return False
        if a.array != b.array:
            return False
        if a.srcs and b.srcs and a.srcs[-1] == b.srcs[-1]:
            return (a.imm or 0) == (b.imm or 0)
        return True


def exact_same_address(a: Instruction, b: Instruction) -> bool:
    """True when the two references provably hit the same element
    (used by store-to-load forwarding)."""
    return _same_symbolic_address(a, b)


def get_model(name: str) -> AliasModel:
    """Look up an alias model by name: ``may-alias`` or ``restrict``."""
    models = {"may-alias": MayAliasModel, "restrict": RestrictModel}
    try:
        return models[name]()
    except KeyError:
        raise ValueError(
            f"unknown alias model {name!r}; expected one of {sorted(models)}"
        ) from None
