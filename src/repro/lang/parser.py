"""Recursive-descent parser for MiniC.

The accepted grammar is a C subset chosen so that the paper's source
snippets (Figures 6 and 8) can be transcribed with minimal changes:
assignment expressions inside conditions, comma lists in ``for``
init/step clauses, short-circuit ``&&``/``||``, and the ternary
operator are all supported.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class ParseError(Exception):
    """Raised when the token stream does not match the grammar."""


_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%="})


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.TranslationUnit`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"line {token.line}: expected {kind!r}, found {token.kind!r} ({token.text!r})"
            )
        return self._advance()

    # -- top level -----------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self._check("eof"):
            self._parse_topdecl(unit)
        return unit

    def _parse_type(self) -> ast.Type:
        token = self._advance()
        if token.kind == "int":
            return ast.INT
        if token.kind == "float":
            return ast.FLOAT
        raise ParseError(f"line {token.line}: expected a type, found {token.text!r}")

    def _parse_topdecl(self, unit: ast.TranslationUnit) -> None:
        token = self._peek()
        if token.kind == "void":
            self._advance()
            name = self._expect("ident")
            unit.functions.append(self._parse_function(name, None))
            return
        if token.kind not in ("int", "float"):
            raise ParseError(
                f"line {token.line}: expected a declaration, found {token.text!r}"
            )
        decl_type = self._parse_type()
        name = self._expect("ident")
        if self._check("("):
            unit.functions.append(self._parse_function(name, decl_type))
            return
        is_array = False
        if self._accept("["):
            self._expect("]")
            is_array = True
        unit.globals.append(
            ast.GlobalVar(decl_type, name.text, is_array, line=name.line)
        )
        while self._accept(","):
            extra = self._expect("ident")
            extra_array = False
            if self._accept("["):
                self._expect("]")
                extra_array = True
            unit.globals.append(
                ast.GlobalVar(decl_type, extra.text, extra_array, line=extra.line)
            )
        self._expect(";")

    def _parse_function(self, name: Token, return_type: Optional[ast.Type]) -> ast.FuncDef:
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            while True:
                param_type = self._parse_type()
                param_name = self._expect("ident")
                is_array = False
                if self._accept("["):
                    self._expect("]")
                    is_array = True
                params.append(ast.Param(param_type, param_name.text, is_array))
                if not self._accept(","):
                    break
        self._expect(")")
        body = self._parse_block()
        return ast.FuncDef(name.text, return_type, params, body, line=name.line)

    # -- statements ------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        open_brace = self._expect("{")
        body: List[ast.Stmt] = []
        while not self._check("}"):
            body.append(self._parse_stmt())
        self._expect("}")
        return ast.Block(line=open_brace.line, body=body)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "{":
            return self._parse_block()
        if token.kind == "if":
            return self._parse_if()
        if token.kind == "while":
            return self._parse_while()
        if token.kind == "for":
            return self._parse_for()
        if token.kind == "break":
            self._advance()
            self._expect(";")
            return ast.Break(line=token.line)
        if token.kind == "continue":
            self._advance()
            self._expect(";")
            return ast.Continue(line=token.line)
        if token.kind == "return":
            self._advance()
            value = None if self._check(";") else self._parse_expr()
            self._expect(";")
            return ast.Return(line=token.line, value=value)
        if token.kind in ("int", "float"):
            return self._parse_vardecl()
        expr = self._parse_comma_expr_as_stmts(token.line)
        self._expect(";")
        return expr

    def _parse_comma_expr_as_stmts(self, line: int) -> ast.Stmt:
        """Parse ``e1, e2, ...`` as a block of expression statements."""
        exprs = [self._parse_expr()]
        while self._accept(","):
            exprs.append(self._parse_expr())
        if len(exprs) == 1:
            return ast.ExprStmt(line=line, expr=exprs[0])
        return ast.Block(
            line=line, body=[ast.ExprStmt(line=e.line or line, expr=e) for e in exprs]
        )

    def _parse_vardecl(self) -> ast.Stmt:
        decl_type = self._parse_type()
        decls: List[ast.Stmt] = []
        while True:
            name = self._expect("ident")
            init = None
            if self._accept("="):
                init = self._parse_expr()
            decls.append(
                ast.VarDecl(line=name.line, type=decl_type, ident=name.text, init=init)
            )
            if not self._accept(","):
                break
        self._expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line=decls[0].line, body=decls)

    def _parse_if(self) -> ast.If:
        token = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_stmt()
        otherwise = None
        if self._accept("else"):
            otherwise = self._parse_stmt()
        return ast.If(line=token.line, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> ast.While:
        token = self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_stmt()
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        token = self._expect("for")
        self._expect("(")
        init: Optional[Union[ast.Stmt, ast.Expr]] = None
        if not self._check(";"):
            if self._peek().kind in ("int", "float"):
                init = self._parse_vardecl()
                cond = None if self._check(";") else self._parse_expr()
                self._expect(";")
                step = self._parse_for_step()
                self._expect(")")
                body = self._parse_stmt()
                return ast.For(
                    line=token.line, init=init, cond=cond, step=step, body=body
                )
            init = self._parse_comma_expr_as_stmts(token.line)
        self._expect(";")
        cond = None if self._check(";") else self._parse_expr()
        self._expect(";")
        step = self._parse_for_step()
        self._expect(")")
        body = self._parse_stmt()
        return ast.For(line=token.line, init=init, cond=cond, step=step, body=body)

    def _parse_for_step(self) -> Optional[ast.Stmt]:
        if self._check(")"):
            return None
        return self._parse_comma_expr_as_stmts(self._peek().line)

    # -- expressions --------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            if not isinstance(left, (ast.Name, ast.Index)):
                raise ParseError(f"line {token.line}: assignment target is not an lvalue")
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(line=token.line, target=left, op=token.kind, value=value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_expr()
            self._expect(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(
                line=cond.line, cond=cond, then=then, otherwise=otherwise
            )
        return cond

    #: Binary precedence levels, loosest first.
    _LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = self._LEVELS[level]
        while self._peek().kind in ops:
            token = self._advance()
            right = self._parse_binary(level + 1)
            if token.kind in ("&&", "||"):
                left = ast.ShortCircuit(
                    line=token.line, op=token.kind, left=left, right=right
                )
            else:
                left = ast.Binary(line=token.line, op=token.kind, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in ("-", "!"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.kind, operand=operand)
        if token.kind in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, (ast.Name, ast.Index)):
                raise ParseError(f"line {token.line}: {token.kind} needs an lvalue")
            return ast.Assign(
                line=token.line,
                target=operand,
                op="+=" if token.kind == "++" else "-=",
                value=ast.IntLit(line=token.line, value=1),
            )
        if token.kind == "(" and self._peek(1).kind in ("int", "float") and self._peek(2).kind == ")":
            self._advance()
            target = self._parse_type()
            self._expect(")")
            operand = self._parse_unary()
            return ast.Cast(line=token.line, target=target, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check("["):
                if not isinstance(expr, ast.Name):
                    raise ParseError(
                        f"line {self._peek().line}: only named arrays can be indexed"
                    )
                self._advance()
                index = self._parse_expr()
                self._expect("]")
                expr = ast.Index(line=expr.line, array=expr.ident, index=index)
            elif self._check("("):
                if not isinstance(expr, ast.Name):
                    raise ParseError(
                        f"line {self._peek().line}: only named functions can be called"
                    )
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(","):
                            break
                self._expect(")")
                expr = ast.Call(line=expr.line, func=expr.ident, args=args)
            elif self._peek().kind in ("++", "--"):
                # Postfix increment, desugared to a compound assignment.
                # MiniC does not support using its (old) value, which is
                # fine for statement/for-step positions.
                token = self._advance()
                if not isinstance(expr, (ast.Name, ast.Index)):
                    raise ParseError(f"line {token.line}: {token.kind} needs an lvalue")
                return ast.Assign(
                    line=token.line,
                    target=expr,
                    op="+=" if token.kind == "++" else "-=",
                    value=ast.IntLit(line=token.line, value=1),
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind == "intlit":
            return ast.IntLit(line=token.line, value=int(token.value))
        if token.kind == "floatlit":
            return ast.FloatLit(line=token.line, value=float(token.value))
        if token.kind == "ident":
            return ast.Name(line=token.line, ident=token.text)
        if token.kind == "(":
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise ParseError(
            f"line {token.line}: unexpected token {token.text!r} in expression"
        )


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source text into a translation unit."""
    return Parser(tokenize(source)).parse_unit()
