"""Linear-scan register allocation with spill-everywhere rewriting.

The paper's Pentium 4 result hinges on register pressure: the manual
load scheduling introduces extra temporaries, and on a machine with
only eight architectural integer registers those temporaries spill,
eating into the speedup (Section 5.1).  This allocator makes that
effect measurable: compiling the same program with different register
budgets yields different amounts of spill code, which the timing model
then prices.

Conventions:

* physical integer register 0 is hard-wired to zero (the interpreter
  guarantees this) and is used as the base index for spill slots;
* integer registers 1-3 and float registers 0-1 are reserved as spill
  scratch registers;
* spill slots live in the synthetic ``__stack__`` array, so spill
  traffic is visible to the cache simulator and instruction profiles,
  exactly as real spill loads/stores would be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg, RegClass, physical
from repro.lang.passes.analysis import liveness

#: Name of the spill-slot array (shared with the interpreter).
STACK_ARRAY = "__stack__"

_INT_RESERVED = 4  # r0 zero, r1-r3 scratch
_FLOAT_RESERVED = 2  # f0-f1 scratch


class AllocationError(Exception):
    """Raised when the register budget is too small to allocate at all."""


@dataclass
class _Interval:
    reg: Reg
    start: int
    end: int
    location: Optional[Reg] = None  # physical register, when not spilled
    slot: Optional[int] = None  # spill slot, when spilled
    #: Immediate value when the register's only definition is LI/FLI.
    #: Such intervals are *rematerialized* (the constant is re-issued at
    #: each use) instead of spilled to memory — which is what real
    #: compilers do and what keeps long-lived constants like HMMER's
    #: -INFTY from generating spill traffic.
    remat_imm: Optional[object] = None
    remat_op: Optional[Opcode] = None


def allocate(program: Program, int_registers: int = 32, float_registers: int = 32) -> Dict[str, int]:
    """Allocate physical registers in place; returns spill statistics.

    Returns a dict with ``spilled_regs``, ``spill_loads`` and
    ``spill_stores`` (static counts of inserted instructions).
    """
    if int_registers < _INT_RESERVED + 2:
        raise AllocationError(
            f"need at least {_INT_RESERVED + 2} integer registers, got {int_registers}"
        )
    if float_registers < _FLOAT_RESERVED + 1:
        raise AllocationError(
            f"need at least {_FLOAT_RESERVED + 1} float registers, got {float_registers}"
        )
    program.finalize()
    intervals = _build_intervals(program)
    _mark_rematerializable(program, intervals)
    slot_counter = [0]
    mapping: Dict[Reg, _Interval] = {}
    use_counts = _use_counts(program)
    for rclass, budget, reserved in (
        (RegClass.INT, int_registers, _INT_RESERVED),
        (RegClass.FLOAT, float_registers, _FLOAT_RESERVED),
    ):
        class_intervals = [iv for iv in intervals if iv.reg.rclass is rclass]
        _linear_scan(
            class_intervals,
            list(range(reserved, budget)),
            rclass,
            slot_counter,
            use_counts,
        )
        for interval in class_intervals:
            mapping[interval.reg] = interval
    stats = _rewrite(program, mapping)
    if slot_counter[0]:
        if STACK_ARRAY in program.arrays:
            program.arrays[STACK_ARRAY].length = slot_counter[0]
        else:
            program.declare_array(STACK_ARRAY, slot_counter[0])
    program.finalize()
    stats["spilled_regs"] = sum(1 for iv in mapping.values() if iv.slot is not None)
    return stats


def _build_intervals(program: Program) -> List[_Interval]:
    live_in, live_out = liveness(program)
    position = 0
    starts: Dict[Reg, int] = {}
    ends: Dict[Reg, int] = {}

    def touch(reg: Reg, at: int) -> None:
        if reg.virtual:
            if reg not in starts or at < starts[reg]:
                starts[reg] = at
            if reg not in ends or at > ends[reg]:
                ends[reg] = at

    for block in program.blocks:
        if not block.instructions:
            continue
        block_start = position
        block_end = position + len(block.instructions) - 1
        for reg in live_in[block.name]:
            touch(reg, block_start)
        for instruction in block.instructions:
            for reg in instruction.reads():
                touch(reg, position)
            if instruction.dest is not None:
                touch(instruction.dest, position)
            position += 1
        for reg in live_out[block.name]:
            touch(reg, block_end)
    return sorted(
        (_Interval(reg, starts[reg], ends[reg]) for reg in starts),
        key=lambda iv: (iv.start, iv.end),
    )


def _mark_rematerializable(program: Program, intervals: List[_Interval]) -> None:
    """Tag intervals whose only definition is a load-immediate."""
    defs: Dict[Reg, List[Instruction]] = {}
    for instruction in program.all_instructions():
        if instruction.dest is not None and instruction.dest.virtual:
            defs.setdefault(instruction.dest, []).append(instruction)
    for interval in intervals:
        reg_defs = defs.get(interval.reg, [])
        if len(reg_defs) == 1 and reg_defs[0].opcode in (Opcode.LI, Opcode.FLI):
            interval.remat_imm = reg_defs[0].imm
            interval.remat_op = reg_defs[0].opcode


def _use_counts(program: Program) -> Dict[Reg, int]:
    """Static read+write counts per virtual register (spill-cost proxy:
    each count is one piece of spill code if the register spills)."""
    counts: Dict[Reg, int] = {}
    for instruction in program.all_instructions():
        for reg in instruction.reads():
            if reg.virtual:
                counts[reg] = counts.get(reg, 0) + 1
        if instruction.dest is not None and instruction.dest.virtual:
            counts[instruction.dest] = counts.get(instruction.dest, 0) + 1
    return counts


def _linear_scan(
    intervals: List[_Interval],
    free_indices: List[int],
    rclass: RegClass,
    slot_counter: List[int],
    use_counts: Dict[Reg, int],
) -> None:
    free = sorted(free_indices, reverse=True)
    active: List[_Interval] = []

    def spill(victim: _Interval) -> None:
        if victim.remat_imm is None:
            victim.slot = slot_counter[0]
            slot_counter[0] += 1
        # Rematerializable victims need no slot: uses re-issue the LI.

    def spill_cost(candidate: _Interval) -> float:
        # Rematerialization is cheap (one LI per use, no memory traffic);
        # real spills cost a memory access per use.
        weight = 0.3 if candidate.remat_imm is not None else 1.0
        return weight * use_counts.get(candidate.reg, 0)

    for interval in intervals:
        # Expire intervals that ended before this one starts.
        still_active = []
        for old in active:
            if old.end < interval.start:
                free.append(old.location.index)
            else:
                still_active.append(old)
        active = still_active
        free.sort(reverse=True)
        if free:
            interval.location = physical(rclass, free.pop())
            active.append(interval)
            continue
        # Cost-aware victim choice: evict the candidate with the lowest
        # static use count (cheapest to spill), breaking ties toward the
        # furthest end (frees the register longest) — the same tradeoff
        # production linear-scan allocators approximate.
        candidates = active + [interval]
        victim = min(candidates, key=lambda iv: (spill_cost(iv), -iv.end))
        if victim is interval:
            spill(interval)
        else:
            interval.location = victim.location
            victim.location = None
            spill(victim)
            active.remove(victim)
            active.append(interval)


def _rewrite(program: Program, mapping: Dict[Reg, _Interval]) -> Dict[str, int]:
    zero = physical(RegClass.INT, 0)
    int_scratch = [physical(RegClass.INT, 1 + i) for i in range(3)]
    float_scratch = [physical(RegClass.FLOAT, i) for i in range(2)]
    spill_loads = 0
    spill_stores = 0

    for block in program.blocks:
        rewritten: List[Instruction] = []
        for instruction in block.instructions:
            before: List[Instruction] = []
            after: List[Instruction] = []
            scratch_next = {RegClass.INT: 0, RegClass.FLOAT: 0}

            def take_scratch(rclass: RegClass) -> Reg:
                pool = int_scratch if rclass is RegClass.INT else float_scratch
                index = scratch_next[rclass]
                if index >= len(pool):  # pragma: no cover - bounded by ISA shape
                    raise AllocationError("ran out of spill scratch registers")
                scratch_next[rclass] = index + 1
                return pool[index]

            new_srcs: List[Reg] = []
            for src in instruction.srcs:
                if not src.virtual:
                    new_srcs.append(src)
                    continue
                interval = mapping[src]
                if interval.location is not None:
                    new_srcs.append(interval.location)
                    continue
                scratch = take_scratch(src.rclass)
                if interval.remat_imm is not None:
                    before.append(
                        Instruction(
                            interval.remat_op, dest=scratch, imm=interval.remat_imm
                        )
                    )
                else:
                    load_op = (
                        Opcode.FLOAD if src.rclass is RegClass.FLOAT else Opcode.LOAD
                    )
                    before.append(
                        Instruction(
                            load_op,
                            dest=scratch,
                            srcs=(zero,),
                            array=STACK_ARRAY,
                            imm=interval.slot,
                        )
                    )
                    spill_loads += 1
                new_srcs.append(scratch)
            dest = instruction.dest
            new_dest = dest
            if dest is not None and dest.virtual:
                interval = mapping[dest]
                if interval.location is not None:
                    new_dest = interval.location
                elif interval.remat_imm is not None:
                    # Rematerialized constant: the defining LI writes a
                    # scratch nobody reads (every use re-issues the LI).
                    pool = (
                        int_scratch if dest.rclass is RegClass.INT else float_scratch
                    )
                    new_dest = pool[0]
                else:
                    if instruction.is_cmov:
                        # CMOV reads its destination: bring in the old value.
                        new_dest = take_scratch(dest.rclass)
                        load_op = (
                            Opcode.FLOAD
                            if dest.rclass is RegClass.FLOAT
                            else Opcode.LOAD
                        )
                        before.append(
                            Instruction(
                                load_op,
                                dest=new_dest,
                                srcs=(zero,),
                                array=STACK_ARRAY,
                                imm=interval.slot,
                            )
                        )
                        spill_loads += 1
                    else:
                        # Plain writes may reuse scratch 0: sources are
                        # read before the destination is written.
                        pool = (
                            int_scratch
                            if dest.rclass is RegClass.INT
                            else float_scratch
                        )
                        new_dest = pool[0]
                    store_op = (
                        Opcode.FSTORE if dest.rclass is RegClass.FLOAT else Opcode.STORE
                    )
                    after.append(
                        Instruction(
                            store_op,
                            srcs=(new_dest, zero),
                            array=STACK_ARRAY,
                            imm=interval.slot,
                        )
                    )
                    spill_stores += 1
            instruction.srcs = tuple(new_srcs)
            instruction.dest = new_dest
            instruction.refresh()
            rewritten.extend(before)
            rewritten.append(instruction)
            rewritten.extend(after)
        block.instructions = rewritten
    return {"spill_loads": spill_loads, "spill_stores": spill_stores}
