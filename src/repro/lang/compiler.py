"""Compiler driver: source text -> optimized, optionally allocated program.

This is the reproduction's "DEC cc -O3": parse, lower, run the
optimization pipeline, then (optionally) allocate physical registers
for a specific machine.  The pipeline order mirrors a classical
optimizing compiler:

1. constant folding + local copy propagation,
2. local common-subexpression / redundant-load elimination
   (alias-model aware),
3. global load hoisting into dominators (alias-model gated — this is
   the pass that the paper shows being defeated by intervening stores),
4. if-conversion to conditional moves (store-free THEN paths only),
5. within-block list scheduling (loads early),
6. dead-code elimination,
7. linear-scan register allocation (when a register budget is given).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.program import Program
from repro.lang.alias import AliasModel, MayAliasModel, get_model
from repro.lang.lower import lower
from repro.lang.parser import parse


@dataclass
class CompilerOptions:
    """Knobs for the optimization pipeline.

    Attributes:
        opt_level: 0 disables every optimization (straight lowering);
            1 enables folding/CSE/DCE; 2 adds scheduling and
            if-conversion; 3 adds global load hoisting.  The paper's
            baselines are -O3.
        alias_model: name of the disambiguation model (``may-alias`` is
            the realistic C default; ``restrict`` reproduces the
            paper's Itanium restrict experiment).
        enable_cmov: allow if-conversion to conditional moves.
        enable_hoist: allow global load hoisting (subject to the alias
            model).
        enable_schedule: allow within-block list scheduling.
        int_registers / float_registers: physical register budget; when
            None the program keeps virtual registers (fine for
            functional runs, required to study register pressure).
    """

    opt_level: int = 3
    alias_model: str = "may-alias"
    enable_cmov: bool = True
    enable_hoist: bool = True
    enable_schedule: bool = True
    #: Itanium-style full predication: stores in THEN paths become
    #: predicated stores instead of blocking if-conversion.
    enable_store_predication: bool = False
    #: Unroll simple counted loops by this factor (1 = off, the
    #: calibrated default; see passes/unroll.py).
    unroll_factor: int = 1
    int_registers: Optional[int] = None
    float_registers: Optional[int] = None

    def model(self) -> AliasModel:
        return get_model(self.alias_model)


def compile_source(
    source: str,
    name: str = "program",
    options: Optional[CompilerOptions] = None,
) -> Program:
    """Compile MiniC source text into a finalized program."""
    options = options or CompilerOptions()
    unit = parse(source)
    program = lower(unit, name)
    program.source = source

    if options.opt_level >= 1:
        from repro.lang.passes import constfold, cse, dce

        constfold.run(program)
        cse.run(program, options.model())
        dce.run(program)
    if options.opt_level >= 2 and options.unroll_factor > 1:
        from repro.lang.passes import unroll

        unroll.run(program, options.unroll_factor)
    if options.opt_level >= 3 and options.enable_hoist:
        from repro.lang.passes import hoist

        # Throttle hoisting by the target's register budget (minus the
        # reserved/scratch registers and a working margin).
        pressure_limit = max((options.int_registers or 32) - 8, 4)
        hoist.run(program, options.model(), pressure_limit=pressure_limit)
    if options.opt_level >= 2 and options.enable_cmov:
        from repro.lang.passes import cmov

        cmov.run(program, allow_store_predication=options.enable_store_predication)
    if options.opt_level >= 2 and options.enable_store_predication:
        from repro.lang.passes import specfwd

        specfwd.run(program)
    if options.opt_level >= 1:
        from repro.lang.passes import dce

        dce.run(program)
    # Register allocation runs BEFORE scheduling (post-RA scheduling):
    # scheduling first would stretch live ranges across whole blocks and
    # manufacture spills the source code never implied — the classic
    # phase-ordering problem, resolved the way production backends do.
    if options.int_registers is not None or options.float_registers is not None:
        from repro.lang.regalloc import allocate

        allocate(
            program,
            int_registers=options.int_registers or 32,
            float_registers=options.float_registers or 32,
        )
    if options.opt_level >= 2 and options.enable_schedule:
        from repro.lang.passes import schedule

        schedule.run(program, options.model())
    return program.finalize()
