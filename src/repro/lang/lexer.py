"""Hand-written lexer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union


class LexError(Exception):
    """Raised on an unrecognized character or malformed literal."""


KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "for",
        "while",
        "break",
        "continue",
        "return",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "<<=",
    ">>=",
    "++",
    "--",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "<<",
    ">>",
]

_SINGLE_OPS = set("+-*/%<>=!&|^~?:;,()[]{}")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    kind is one of: "ident", "intlit", "floatlit", a keyword (type
    keywords are "int"/"float"), an operator string, or "eof".
    """

    kind: str
    text: str
    line: int
    value: Optional[Union[int, float]] = None

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Convert MiniC source text into a token list ending with ``eof``.

    Supports ``//`` line comments and ``/* */`` block comments; both are
    skipped (block comments may span lines and line numbers stay
    correct).
    """
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            try:
                if seen_dot or seen_exp:
                    tokens.append(Token("floatlit", text, line, value=float(text)))
                else:
                    tokens.append(Token("intlit", text, line, value=int(text)))
            except ValueError as exc:
                raise LexError(f"line {line}: bad numeric literal {text!r}") from exc
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(ch, ch, line))
            i += 1
            continue
        raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
