"""Lowering: MiniC AST -> three-address code over virtual registers.

Code shape intentionally mirrors what a C compiler emits for the Alpha:

* conditions compile to a compare producing 0/1 followed by a
  conditional branch, with the *inverted* compare used so the THEN path
  is the fall-through (the paper's Figure 3/7 shape, where the store in
  the THEN path sits under a branch-if-false);
* short-circuit ``&&``/``||`` produce one branch per clause, so an
  involved IF condition contains several load->branch sequences;
* array accesses with a constant displacement (``a[k-1]``) fold the
  displacement into the memory operand.

All user functions other than the entry point are inlined, so the final
program is a single CFG — which is also how the paper's hot loops look
after DEC cc -O3 inlining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg, RegClass, RegFactory
from repro.lang import ast


class LoweringError(Exception):
    """Raised on semantic errors (unknown names, type misuse, recursion)."""


#: Integer binary AST op -> opcode.
_INT_BINOPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
}
_FLOAT_BINOPS = {
    "+": Opcode.FADD,
    "-": Opcode.FSUB,
    "*": Opcode.FMUL,
    "/": Opcode.FDIV,
}
_INT_CMPS = {
    "==": Opcode.CMPEQ,
    "!=": Opcode.CMPNE,
    "<": Opcode.CMPLT,
    "<=": Opcode.CMPLE,
    ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE,
}
_FLOAT_CMPS = {
    "==": Opcode.FCMPEQ,
    "!=": Opcode.FCMPNE,
    "<": Opcode.FCMPLT,
    "<=": Opcode.FCMPLE,
    ">": Opcode.FCMPGT,
    ">=": Opcode.FCMPGE,
}
#: Comparison op -> its logical negation.
_CMP_NEGATION = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_RELATIONAL_OPS = frozenset(_INT_CMPS)


@dataclass
class _LoopContext:
    """Targets for break/continue inside the innermost loop."""

    break_target: str
    continue_target: str


@dataclass
class _InlineContext:
    """Return plumbing for one inlined call."""

    end_label: str
    result: Optional[Reg]
    result_type: Optional[ast.Type]


class Lowering:
    """Lowers one translation unit to a :class:`repro.isa.Program`.

    Entry point is the function named ``kernel`` (or the only function,
    if exactly one is defined).
    """

    def __init__(self, unit: ast.TranslationUnit, name: str = "program"):
        self.unit = unit
        self.program = Program(name)
        self.regs = RegFactory()
        self._globals: Dict[str, ast.GlobalVar] = {g.ident: g for g in unit.globals}
        #: Scalar globals: name -> (register, type); loaded once at entry.
        self._global_regs: Dict[str, Tuple[Reg, ast.Type]] = {}
        #: Scalar globals assigned anywhere (stored back at exit).
        self._assigned_globals: Set[str] = set()
        #: Stack of local scopes: name -> (register, type).
        self._scopes: List[Dict[str, Tuple[Reg, ast.Type]]] = []
        #: Stack of array-parameter environments: formal -> actual array.
        self._array_envs: List[Dict[str, str]] = [{}]
        self._loops: List[_LoopContext] = []
        self._inline_stack: List[str] = []
        self._inline_contexts: List[_InlineContext] = []
        self._block_counter = 0
        self._current = None  # current BasicBlock
        self.zero: Optional[Reg] = None

    # -- driver ----------------------------------------------------------------
    def run(self) -> Program:
        functions = self.unit.functions
        if not functions:
            raise LoweringError("translation unit defines no functions")
        try:
            entry_func = self.unit.function("kernel")
        except KeyError:
            if len(functions) == 1:
                entry_func = functions[0]
            else:
                raise LoweringError(
                    "multiple functions defined but none is named 'kernel'"
                ) from None
        if entry_func.params:
            raise LoweringError("the kernel entry function takes no parameters")

        for global_var in self.unit.globals:
            rclass = RegClass.FLOAT if global_var.type.is_float else RegClass.INT
            length = 0 if global_var.is_array else 1
            self.program.declare_array(global_var.ident, length, rclass)

        entry = self.program.new_block("entry")
        self._current = entry
        self.zero = self.regs.fresh_int()
        self._emit(Instruction(Opcode.LI, dest=self.zero, imm=0))
        for global_var in self.unit.globals:
            if global_var.is_array:
                continue
            reg = self._load_global_scalar(global_var)
            self._global_regs[global_var.ident] = (reg, global_var.type)

        self._scopes.append({})
        exit_label = self._fresh_label("exit")
        self._inline_contexts.append(_InlineContext(exit_label, None, None))
        self._lower_stmt(entry_func.body)
        self._inline_contexts.pop()
        self._emit(Instruction(Opcode.JMP, target=exit_label))
        exit_block = self.program.new_block(exit_label)
        self._current = exit_block
        for name in sorted(self._assigned_globals):
            reg, gtype = self._global_regs[name]
            opcode = Opcode.FSTORE if gtype.is_float else Opcode.STORE
            self._emit(Instruction(opcode, srcs=(reg, self.zero), array=name, imm=0))
        self._emit(Instruction(Opcode.HALT))
        self._scopes.pop()
        return self.program.finalize()

    def _load_global_scalar(self, global_var: ast.GlobalVar) -> Reg:
        if global_var.type.is_float:
            reg = self.regs.fresh_float()
            opcode = Opcode.FLOAD
        else:
            reg = self.regs.fresh_int()
            opcode = Opcode.LOAD
        self._emit(
            Instruction(
                opcode,
                dest=reg,
                srcs=(self.zero,),
                array=global_var.ident,
                imm=0,
                line=global_var.line,
            )
        )
        return reg

    # -- block plumbing ----------------------------------------------------------
    def _fresh_label(self, hint: str) -> str:
        self._block_counter += 1
        return f"{hint}.{self._block_counter}"

    def _cut(self, hint: str) -> str:
        """Start a new block that follows the current one in layout order."""
        label = self._fresh_label(hint)
        self._current = self.program.new_block(label)
        return label

    def _start_labeled(self, label: str) -> None:
        self._current = self.program.new_block(label)

    def _emit(self, instruction: Instruction) -> Instruction:
        self._current.append(instruction)
        return instruction

    # -- name resolution --------------------------------------------------------
    def _lookup_scalar(self, name: str, line: int) -> Tuple[Reg, ast.Type]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self._global_regs:
            return self._global_regs[name]
        raise LoweringError(f"line {line}: unknown variable {name!r}")

    def _resolve_array(self, name: str, line: int) -> str:
        env = self._array_envs[-1]
        seen = set()
        while name in env:
            if name in seen:
                raise LoweringError(f"line {line}: cyclic array binding for {name!r}")
            seen.add(name)
            name = env[name]
        if name not in self.program.arrays:
            raise LoweringError(f"line {line}: unknown array {name!r}")
        return name

    def _array_type(self, name: str) -> ast.Type:
        decl = self.program.arrays[name]
        return ast.FLOAT if decl.rclass is RegClass.FLOAT else ast.INT

    # -- statements ----------------------------------------------------------------
    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._scopes.append({})
            for inner in stmt.body:
                self._lower_stmt(inner)
            self._scopes.pop()
        elif isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise LoweringError(f"line {stmt.line}: break outside a loop")
            self._emit(Instruction(Opcode.JMP, target=self._loops[-1].break_target, line=stmt.line))
            self._cut("dead")
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise LoweringError(f"line {stmt.line}: continue outside a loop")
            self._emit(
                Instruction(Opcode.JMP, target=self._loops[-1].continue_target, line=stmt.line)
            )
            self._cut("dead")
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        else:
            raise LoweringError(f"line {stmt.line}: unsupported statement {type(stmt).__name__}")

    def _lower_vardecl(self, stmt: ast.VarDecl) -> None:
        rclass = RegClass.FLOAT if stmt.type.is_float else RegClass.INT
        reg = self.regs.fresh(rclass)
        self._scopes[-1][stmt.ident] = (reg, stmt.type)
        if stmt.init is not None:
            value, vtype = self._lower_expr(stmt.init)
            value = self._coerce(value, vtype, stmt.type, stmt.line)
            self._emit_move(reg, value, stmt.type, stmt.line)
        # Uninitialized locals read as garbage in C; we leave the register
        # undefined and the interpreter reports a use-before-def error.

    def _lower_if(self, stmt: ast.If) -> None:
        else_label = self._fresh_label("if.else" if stmt.otherwise else "if.end")
        self._lower_branch_false(stmt.cond, else_label)
        self._lower_stmt(stmt.then)
        if stmt.otherwise is not None:
            end_label = self._fresh_label("if.end")
            self._emit(Instruction(Opcode.JMP, target=end_label, line=stmt.line))
            self._start_labeled(else_label)
            self._lower_stmt(stmt.otherwise)
            self._emit(Instruction(Opcode.JMP, target=end_label, line=stmt.line))
            self._start_labeled(end_label)
        else:
            self._emit(Instruction(Opcode.JMP, target=else_label, line=stmt.line))
            self._start_labeled(else_label)

    def _lower_while(self, stmt: ast.While) -> None:
        head_label = self._fresh_label("while.head")
        exit_label = self._fresh_label("while.end")
        self._emit(Instruction(Opcode.JMP, target=head_label, line=stmt.line))
        self._start_labeled(head_label)
        self._lower_branch_false(stmt.cond, exit_label)
        self._loops.append(_LoopContext(exit_label, head_label))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        self._emit(Instruction(Opcode.JMP, target=head_label, line=stmt.line))
        self._start_labeled(exit_label)

    def _lower_for(self, stmt: ast.For) -> None:
        self._scopes.append({})
        if stmt.init is not None:
            if isinstance(stmt.init, ast.Stmt):
                self._lower_stmt(stmt.init)
            else:
                self._lower_expr(stmt.init)
        head_label = self._fresh_label("for.head")
        step_label = self._fresh_label("for.step")
        exit_label = self._fresh_label("for.end")
        self._emit(Instruction(Opcode.JMP, target=head_label, line=stmt.line))
        self._start_labeled(head_label)
        if stmt.cond is not None:
            self._lower_branch_false(stmt.cond, exit_label)
        self._loops.append(_LoopContext(exit_label, step_label))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        self._emit(Instruction(Opcode.JMP, target=step_label, line=stmt.line))
        self._start_labeled(step_label)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self._emit(Instruction(Opcode.JMP, target=head_label, line=stmt.line))
        self._start_labeled(exit_label)
        self._scopes.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        context = self._inline_contexts[-1]
        if stmt.value is not None:
            value, vtype = self._lower_expr(stmt.value)
            if context.result is None:
                # Returning a value from the kernel: value is discarded.
                pass
            else:
                value = self._coerce(value, vtype, context.result_type, stmt.line)
                self._emit_move(context.result, value, context.result_type, stmt.line)
        self._emit(Instruction(Opcode.JMP, target=context.end_label, line=stmt.line))
        self._cut("dead")

    # -- conditional branching ----------------------------------------------------
    def _lower_branch_false(self, cond: ast.Expr, false_target: str) -> None:
        """Emit code that jumps to ``false_target`` when ``cond`` is false
        and falls through when it is true (the C codegen shape)."""
        if isinstance(cond, ast.ShortCircuit) and cond.op == "&&":
            self._lower_branch_false(cond.left, false_target)
            self._lower_branch_false(cond.right, false_target)
            return
        if isinstance(cond, ast.ShortCircuit) and cond.op == "||":
            true_label = self._fresh_label("or.true")
            self._lower_branch_true(cond.left, true_label)
            self._lower_branch_false(cond.right, false_target)
            self._emit(Instruction(Opcode.JMP, target=true_label, line=cond.line))
            self._start_labeled(true_label)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._lower_branch_true(cond.operand, false_target)
            return
        if isinstance(cond, ast.Binary) and cond.op in _RELATIONAL_OPS:
            flag = self._lower_comparison(cond, negate=True)
            self._emit(
                Instruction(Opcode.BR, srcs=(flag,), target=false_target, line=cond.line)
            )
            self._cut("then")
            return
        value, vtype = self._lower_expr(cond)
        flag = self._truth_flag(value, vtype, cond.line, negate=True)
        self._emit(Instruction(Opcode.BR, srcs=(flag,), target=false_target, line=cond.line))
        self._cut("then")

    def _lower_branch_true(self, cond: ast.Expr, true_target: str) -> None:
        """Dual of :meth:`_lower_branch_false`."""
        if isinstance(cond, ast.ShortCircuit) and cond.op == "||":
            self._lower_branch_true(cond.left, true_target)
            self._lower_branch_true(cond.right, true_target)
            return
        if isinstance(cond, ast.ShortCircuit) and cond.op == "&&":
            false_label = self._fresh_label("and.false")
            self._lower_branch_false(cond.left, false_label)
            self._lower_branch_true(cond.right, true_target)
            self._emit(Instruction(Opcode.JMP, target=false_label, line=cond.line))
            self._start_labeled(false_label)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._lower_branch_false(cond.operand, true_target)
            return
        if isinstance(cond, ast.Binary) and cond.op in _RELATIONAL_OPS:
            flag = self._lower_comparison(cond, negate=False)
            self._emit(
                Instruction(Opcode.BR, srcs=(flag,), target=true_target, line=cond.line)
            )
            self._cut("else")
            return
        value, vtype = self._lower_expr(cond)
        flag = self._truth_flag(value, vtype, cond.line, negate=False)
        self._emit(Instruction(Opcode.BR, srcs=(flag,), target=true_target, line=cond.line))
        self._cut("else")

    def _lower_comparison(self, cond: ast.Binary, negate: bool) -> Reg:
        op = _CMP_NEGATION[cond.op] if negate else cond.op
        left, ltype = self._lower_expr(cond.left)
        right, rtype = self._lower_expr(cond.right)
        common = ast.FLOAT if (ltype.is_float or rtype.is_float) else ast.INT
        left = self._coerce(left, ltype, common, cond.line)
        right = self._coerce(right, rtype, common, cond.line)
        opcode = _FLOAT_CMPS[op] if common.is_float else _INT_CMPS[op]
        flag = self.regs.fresh_int()
        self._emit(Instruction(opcode, dest=flag, srcs=(left, right), line=cond.line))
        return flag

    def _truth_flag(self, value: Reg, vtype: ast.Type, line: int, negate: bool) -> Reg:
        """0/1 flag for value != 0 (or == 0 when negated)."""
        if vtype.is_float:
            zero_f = self.regs.fresh_float()
            self._emit(Instruction(Opcode.FLI, dest=zero_f, imm=0.0, line=line))
            opcode = Opcode.FCMPEQ if negate else Opcode.FCMPNE
            flag = self.regs.fresh_int()
            self._emit(Instruction(opcode, dest=flag, srcs=(value, zero_f), line=line))
            return flag
        opcode = Opcode.CMPEQ if negate else Opcode.CMPNE
        flag = self.regs.fresh_int()
        self._emit(Instruction(opcode, dest=flag, srcs=(value, self.zero), line=line))
        return flag

    # -- expressions ------------------------------------------------------------------
    def _lower_expr(self, expr: ast.Expr) -> Tuple[Reg, ast.Type]:
        if isinstance(expr, ast.IntLit):
            reg = self.regs.fresh_int()
            self._emit(Instruction(Opcode.LI, dest=reg, imm=expr.value, line=expr.line))
            return reg, ast.INT
        if isinstance(expr, ast.FloatLit):
            reg = self.regs.fresh_float()
            self._emit(Instruction(Opcode.FLI, dest=reg, imm=expr.value, line=expr.line))
            return reg, ast.FLOAT
        if isinstance(expr, ast.Name):
            return self._lookup_scalar(expr.ident, expr.line)
        if isinstance(expr, ast.Index):
            return self._lower_load(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Cast):
            value, vtype = self._lower_expr(expr.operand)
            return self._coerce(value, vtype, expr.target, expr.line), expr.target
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.ShortCircuit):
            return self._lower_shortcircuit_value(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional_value(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise LoweringError(f"line {expr.line}: unsupported expression {type(expr).__name__}")

    def _split_index(self, index: ast.Expr) -> Tuple[ast.Expr, int]:
        """Fold ``e + c`` / ``e - c`` / plain ``c`` into (base expr, displacement)."""
        if isinstance(index, ast.Binary) and index.op in ("+", "-"):
            if isinstance(index.right, ast.IntLit):
                sign = 1 if index.op == "+" else -1
                return index.left, sign * index.right.value
            if index.op == "+" and isinstance(index.left, ast.IntLit):
                return index.right, index.left.value
        return index, 0

    def _lower_address(self, expr: ast.Index) -> Tuple[str, Reg, int]:
        array = self._resolve_array(expr.array, expr.line)
        base, displacement = self._split_index(expr.index)
        if isinstance(base, ast.IntLit):
            return array, self.zero, displacement + base.value
        index_reg, itype = self._lower_expr(base)
        if itype.is_float:
            raise LoweringError(f"line {expr.line}: array index must be an integer")
        return array, index_reg, displacement

    def _lower_load(self, expr: ast.Index) -> Tuple[Reg, ast.Type]:
        array, index_reg, displacement = self._lower_address(expr)
        etype = self._array_type(array)
        if etype.is_float:
            dest = self.regs.fresh_float()
            opcode = Opcode.FLOAD
        else:
            dest = self.regs.fresh_int()
            opcode = Opcode.LOAD
        self._emit(
            Instruction(
                opcode,
                dest=dest,
                srcs=(index_reg,),
                array=array,
                imm=displacement,
                line=expr.line,
            )
        )
        return dest, etype

    def _lower_unary(self, expr: ast.Unary) -> Tuple[Reg, ast.Type]:
        value, vtype = self._lower_expr(expr.operand)
        if expr.op == "-":
            opcode = Opcode.FNEG if vtype.is_float else Opcode.NEG
            dest = self.regs.fresh(RegClass.FLOAT if vtype.is_float else RegClass.INT)
            self._emit(Instruction(opcode, dest=dest, srcs=(value,), line=expr.line))
            return dest, vtype
        if expr.op == "!":
            flag = self._truth_flag(value, vtype, expr.line, negate=True)
            return flag, ast.INT
        raise LoweringError(f"line {expr.line}: unsupported unary operator {expr.op!r}")

    def _lower_binary(self, expr: ast.Binary) -> Tuple[Reg, ast.Type]:
        if expr.op in _RELATIONAL_OPS:
            return self._lower_comparison(expr, negate=False), ast.INT
        left, ltype = self._lower_expr(expr.left)
        right, rtype = self._lower_expr(expr.right)
        if expr.op in ("%", "&", "|", "^", "<<", ">>") and (ltype.is_float or rtype.is_float):
            raise LoweringError(f"line {expr.line}: operator {expr.op!r} requires integers")
        common = ast.FLOAT if (ltype.is_float or rtype.is_float) else ast.INT
        left = self._coerce(left, ltype, common, expr.line)
        right = self._coerce(right, rtype, common, expr.line)
        table = _FLOAT_BINOPS if common.is_float else _INT_BINOPS
        if expr.op not in table:
            raise LoweringError(f"line {expr.line}: unsupported operator {expr.op!r}")
        dest = self.regs.fresh(RegClass.FLOAT if common.is_float else RegClass.INT)
        self._emit(Instruction(table[expr.op], dest=dest, srcs=(left, right), line=expr.line))
        return dest, common

    def _lower_shortcircuit_value(self, expr: ast.ShortCircuit) -> Tuple[Reg, ast.Type]:
        """``a && b`` / ``a || b`` used as a value: materialize 0/1."""
        result = self.regs.fresh_int()
        end_label = self._fresh_label("bool.end")
        default = 0 if expr.op == "&&" else 1
        self._emit(Instruction(Opcode.LI, dest=result, imm=default, line=expr.line))
        other_label = self._fresh_label("bool.other")
        if expr.op == "&&":
            self._lower_branch_false(expr, other_label)
        else:
            self._lower_branch_true(expr, other_label)
            # branch_true falls through on FALSE; jump straight to end
            # keeping the default 1?  No: default is 1 for ||, so on the
            # false fall-through we must set 0 before ending.
        if expr.op == "&&":
            self._emit(Instruction(Opcode.LI, dest=result, imm=1, line=expr.line))
            self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
            self._start_labeled(other_label)
            self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
        else:
            self._emit(Instruction(Opcode.LI, dest=result, imm=0, line=expr.line))
            self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
            self._start_labeled(other_label)
            self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
        self._start_labeled(end_label)
        return result, ast.INT

    def _lower_conditional_value(self, expr: ast.Conditional) -> Tuple[Reg, ast.Type]:
        """Ternary: lowered with branches (if-conversion may turn it into CMOV)."""
        else_label = self._fresh_label("sel.else")
        end_label = self._fresh_label("sel.end")
        self._lower_branch_false(expr.cond, else_label)
        then_value, then_type = self._lower_expr(expr.then)
        # Peek at the other arm's type by lowering into a dead-end path is
        # not possible without emitting; unify on float if either literal
        # type says so after lowering both arms.
        result_int = self.regs.fresh_int()
        result_float = self.regs.fresh_float()
        if then_type.is_float:
            self._emit_move(result_float, then_value, ast.FLOAT, expr.line)
        else:
            self._emit_move(result_int, then_value, ast.INT, expr.line)
        self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
        self._start_labeled(else_label)
        other_value, other_type = self._lower_expr(expr.otherwise)
        if then_type.is_float != other_type.is_float:
            raise LoweringError(
                f"line {expr.line}: ternary arms must have the same type"
            )
        if other_type.is_float:
            self._emit_move(result_float, other_value, ast.FLOAT, expr.line)
        else:
            self._emit_move(result_int, other_value, ast.INT, expr.line)
        self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
        self._start_labeled(end_label)
        if then_type.is_float:
            return result_float, ast.FLOAT
        return result_int, ast.INT

    def _lower_assign(self, expr: ast.Assign) -> Tuple[Reg, ast.Type]:
        target = expr.target
        if isinstance(target, ast.Name):
            return self._lower_assign_scalar(expr, target)
        if isinstance(target, ast.Index):
            return self._lower_assign_element(expr, target)
        raise LoweringError(f"line {expr.line}: bad assignment target")

    def _lower_assign_scalar(self, expr: ast.Assign, target: ast.Name) -> Tuple[Reg, ast.Type]:
        reg, ttype = self._lookup_scalar(target.ident, target.line)
        if target.ident in self._global_regs and not any(
            target.ident in scope for scope in self._scopes
        ):
            self._assigned_globals.add(target.ident)
        value, vtype = self._lower_expr(expr.value)
        if expr.op != "=":
            value = self._apply_compound(reg, ttype, value, vtype, expr.op[0], expr.line)
            vtype = ttype
        value = self._coerce(value, vtype, ttype, expr.line)
        self._emit_move(reg, value, ttype, expr.line)
        return reg, ttype

    def _lower_assign_element(self, expr: ast.Assign, target: ast.Index) -> Tuple[Reg, ast.Type]:
        array, index_reg, displacement = self._lower_address(target)
        etype = self._array_type(array)
        if expr.op != "=":
            if etype.is_float:
                old = self.regs.fresh_float()
                self._emit(
                    Instruction(
                        Opcode.FLOAD,
                        dest=old,
                        srcs=(index_reg,),
                        array=array,
                        imm=displacement,
                        line=target.line,
                    )
                )
            else:
                old = self.regs.fresh_int()
                self._emit(
                    Instruction(
                        Opcode.LOAD,
                        dest=old,
                        srcs=(index_reg,),
                        array=array,
                        imm=displacement,
                        line=target.line,
                    )
                )
            value, vtype = self._lower_expr(expr.value)
            value = self._apply_compound(old, etype, value, vtype, expr.op[0], expr.line)
        else:
            value, vtype = self._lower_expr(expr.value)
            value = self._coerce(value, vtype, etype, expr.line)
        opcode = Opcode.FSTORE if etype.is_float else Opcode.STORE
        self._emit(
            Instruction(
                opcode,
                srcs=(value, index_reg),
                array=array,
                imm=displacement,
                line=expr.line,
            )
        )
        return value, etype

    def _apply_compound(
        self,
        old: Reg,
        old_type: ast.Type,
        value: Reg,
        vtype: ast.Type,
        op: str,
        line: int,
    ) -> Reg:
        """Compute ``old <op> value`` for compound assignment operators."""
        common = ast.FLOAT if (old_type.is_float or vtype.is_float) else ast.INT
        left = self._coerce(old, old_type, common, line)
        right = self._coerce(value, vtype, common, line)
        table = _FLOAT_BINOPS if common.is_float else _INT_BINOPS
        if op not in table:
            raise LoweringError(f"line {line}: unsupported compound operator {op!r}=")
        dest = self.regs.fresh(RegClass.FLOAT if common.is_float else RegClass.INT)
        self._emit(Instruction(table[op], dest=dest, srcs=(left, right), line=line))
        return self._coerce(dest, common, old_type, line)

    def _lower_call(self, expr: ast.Call) -> Tuple[Reg, ast.Type]:
        try:
            func = self.unit.function(expr.func)
        except KeyError:
            raise LoweringError(f"line {expr.line}: unknown function {expr.func!r}") from None
        if expr.func in self._inline_stack:
            raise LoweringError(
                f"line {expr.line}: recursive call to {expr.func!r} cannot be inlined"
            )
        if len(expr.args) != len(func.params):
            raise LoweringError(
                f"line {expr.line}: {expr.func!r} expects {len(func.params)} args, "
                f"got {len(expr.args)}"
            )
        scope: Dict[str, Tuple[Reg, ast.Type]] = {}
        array_env = dict(self._array_envs[-1])
        new_array_env: Dict[str, str] = {}
        for param, arg in zip(func.params, expr.args):
            if param.is_array:
                if not isinstance(arg, ast.Name):
                    raise LoweringError(
                        f"line {expr.line}: array argument must be an array name"
                    )
                new_array_env[param.ident] = self._resolve_array(arg.ident, arg.line)
            else:
                value, vtype = self._lower_expr(arg)
                value = self._coerce(value, vtype, param.type, expr.line)
                copy = self.regs.fresh(
                    RegClass.FLOAT if param.type.is_float else RegClass.INT
                )
                self._emit_move(copy, value, param.type, expr.line)
                scope[param.ident] = (copy, param.type)
        result: Optional[Reg] = None
        if func.return_type is not None:
            result = self.regs.fresh(
                RegClass.FLOAT if func.return_type.is_float else RegClass.INT
            )
        end_label = self._fresh_label(f"ret.{func.name}")
        self._inline_stack.append(expr.func)
        self._scopes.append(scope)
        self._array_envs.append({**array_env, **new_array_env})
        self._inline_contexts.append(_InlineContext(end_label, result, func.return_type))
        self._lower_stmt(func.body)
        self._inline_contexts.pop()
        self._array_envs.pop()
        self._scopes.pop()
        self._inline_stack.pop()
        self._emit(Instruction(Opcode.JMP, target=end_label, line=expr.line))
        self._start_labeled(end_label)
        if result is None:
            return self.zero, ast.INT
        return result, func.return_type

    # -- helpers ----------------------------------------------------------------------
    def _coerce(self, value: Reg, from_type: ast.Type, to_type: ast.Type, line: int) -> Reg:
        if from_type.is_float == to_type.is_float:
            return value
        if to_type.is_float:
            dest = self.regs.fresh_float()
            self._emit(Instruction(Opcode.CVTIF, dest=dest, srcs=(value,), line=line))
        else:
            dest = self.regs.fresh_int()
            self._emit(Instruction(Opcode.CVTFI, dest=dest, srcs=(value,), line=line))
        return dest

    def _emit_move(self, dest: Reg, src: Reg, vtype: ast.Type, line: int) -> None:
        if dest == src:
            return
        opcode = Opcode.FMOV if vtype.is_float else Opcode.MOV
        self._emit(Instruction(opcode, dest=dest, srcs=(src,), line=line))


def lower(unit: ast.TranslationUnit, name: str = "program") -> Program:
    """Lower a parsed translation unit to an unoptimized program."""
    return Lowering(unit, name).run()
