"""Abstract syntax tree for MiniC.

Every node records the 1-based source line it starts on; the compiler
threads lines through to machine instructions so the characterization
tools can map hot loads back to source lines exactly as the paper's
Table 5 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A MiniC scalar type: ``int`` or ``float``."""

    name: str  # "int" | "float"

    @property
    def is_float(self) -> bool:
        return self.name == "float"


INT = Type("int")
FLOAT = Type("float")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    """Reference to a scalar variable (local or global parameter)."""

    ident: str = ""


@dataclass
class Index(Expr):
    """Array element access ``array[index]``."""

    array: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""  # "-" | "!"
    operand: Optional[Expr] = None


@dataclass
class Cast(Expr):
    """Explicit cast ``(int)e`` or ``(float)e``."""

    target: Type = INT
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """Arithmetic/relational/bitwise binary operation (not && / ||)."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class ShortCircuit(Expr):
    """``&&`` or ``||`` — lowers to control flow (extra branches)."""

    op: str = ""  # "&&" | "||"
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """Assignment expression ``lvalue op expr`` where op is =, +=, -=, *=.

    C-style: usable inside conditions, as in the paper's
    ``if ((sc = ip[k-1] + tpim[k-1]) > mc[k])``.
    """

    target: Optional[Expr] = None  # Name or Index
    op: str = "="
    value: Optional[Expr] = None


@dataclass
class Call(Expr):
    """Call to a user-defined function (always inlined by the compiler)."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    """Local scalar declaration, optionally initialized."""

    type: Type = INT
    ident: str = ""
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Union[Stmt, Expr]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class GlobalVar:
    """Top-level declaration.

    ``int M;`` declares a read-only scalar parameter bound by the
    harness; ``int mc[];`` declares an array bound by the harness.
    """

    type: Type
    ident: str
    is_array: bool
    line: int = 0


@dataclass
class Param:
    type: Type
    ident: str
    is_array: bool = False


@dataclass
class FuncDef:
    """Function definition.  ``kernel`` is the entry point; all other
    functions are inlined into their callers at compile time."""

    name: str
    return_type: Optional[Type]  # None for void
    params: List[Param]
    body: Block
    line: int = 0


@dataclass
class TranslationUnit:
    """A parsed MiniC source file."""

    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")
