"""MiniC: a small C-like language and optimizing compiler.

The paper performs *source-level* load scheduling on C programs and
relies on the DEC Alpha C compiler's -O3 pipeline.  MiniC is the
reproduction's stand-in: a C subset rich enough to transcribe the
paper's kernels (Figure 6 and Figure 8) verbatim, compiled by a real
multi-pass optimizer whose load-hoisting is gated on the same may-alias
limitation that defeats the paper's compiler (Figure 5).

Public entry point: :func:`repro.lang.compiler.compile_source`.
"""

from repro.lang.compiler import CompilerOptions, compile_source

__all__ = ["CompilerOptions", "compile_source"]
