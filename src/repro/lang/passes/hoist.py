"""Global load hoisting, gated by the memory-disambiguation model.

This pass is the reproduction of the paper's Section 2.2.2 (Figure 5):
a compiler may move a load from block B up into a dominating block D
when

* B *postdominates* D (the load executes whenever D does, so the move
  is not speculative),
* every operand of the load (and of its in-block pure address
  computation, which moves along with it) is available at the end of D,
* **no store on any path from D to B may alias the load** — the check
  that, under the realistic ``may-alias`` model, fails for the paper's
  hot loops because the THEN paths of their IF statements store to
  arrays the compiler cannot disambiguate (``mc`` in Figure 5).  Under
  the ``restrict`` model the same hoists succeed, reproducing the
  paper's Itanium ``restrict`` experiment.

The pass iterates to a fixed point, so a load can climb several
dominators, and an address load (pointer chasing) can unlock its
dependent load on the next round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import Reg
from repro.lang.alias import AliasModel
from repro.lang.passes.analysis import def_counts, liveness

#: Hard cap on fixed-point iterations (one load slice moves per round).
MAX_ROUNDS = 200


def run(
    program: Program, model: AliasModel, pressure_limit: Optional[int] = None
) -> int:
    """Hoist loads into dominators; returns the number of moves.

    ``pressure_limit`` caps the register pressure a hoist may create in
    the region it extends live ranges across (per register class).
    Production compilers throttle code motion exactly this way — on a
    register-scarce target (the paper's Pentium 4) hoisting is barely
    profitable because it immediately causes spills.
    """
    total = 0
    for _ in range(MAX_ROUNDS):
        moved = _one_round(program, model, pressure_limit)
        total += moved
        if not moved:
            break
    return total


def postdominators(program: Program) -> Dict[str, Set[str]]:
    """Postdominator sets (dominators on the reversed CFG)."""
    program.finalize()
    names = [block.name for block in program.blocks]
    exits = [block.name for block in program.blocks if not block.successors]
    all_names = set(names)
    pdom: Dict[str, Set[str]] = {name: set(all_names) for name in names}
    for name in exits:
        pdom[name] = {name}
    changed = True
    while changed:
        changed = False
        for block in reversed(program.blocks):
            name = block.name
            if name in exits:
                continue
            succs = block.successors
            if succs:
                new = set.intersection(*(pdom[s] for s in succs))
            else:
                new = set()
            new.add(name)
            if new != pdom[name]:
                pdom[name] = new
                changed = True
    return pdom


def _one_round(
    program: Program, model: AliasModel, pressure_limit: Optional[int]
) -> int:
    program.finalize()
    dom = program.dominators()
    pdom = postdominators(program)
    single_def = {reg for reg, count in def_counts(program).items() if count == 1}
    live_out = liveness(program)[1] if pressure_limit is not None else None

    for block in program.blocks:
        strict_doms = dom[block.name] - {block.name}
        if not strict_doms:
            continue
        for position, instruction in enumerate(block.instructions):
            if not instruction.is_load:
                continue
            slice_positions = _movable_slice(block, position, single_def)
            if slice_positions is None:
                continue
            target = _best_target(
                program, block, position, slice_positions, strict_doms,
                dom, pdom, model, pressure_limit, live_out,
            )
            if target is None:
                continue
            _move(program, block, slice_positions, target)
            return 1  # data structures are stale after a move; restart
    return 0


def _movable_slice(
    block: BasicBlock, load_position: int, single_def: Set[Reg]
) -> Optional[List[int]]:
    """Positions (ascending) of the load plus its in-block pure backward
    slice, or None when the slice is not movable."""
    load = block.instructions[load_position]
    if load.dest is None or load.dest not in single_def:
        return None
    needed: Set[Reg] = set(load.reads())
    positions = [load_position]
    for position in range(load_position - 1, -1, -1):
        instruction = block.instructions[position]
        dest = instruction.dest
        if dest is None or dest not in needed:
            continue
        if instruction.is_mem or instruction.is_control or instruction.is_cmov:
            return None  # address depends on something we cannot move
        if dest not in single_def:
            return None
        positions.append(position)
        needed.discard(dest)
        needed.update(instruction.reads())
    positions.reverse()
    return positions


def _best_target(
    program: Program,
    block: BasicBlock,
    load_position: int,
    slice_positions: List[int],
    strict_doms: Set[str],
    dom: Dict[str, Set[str]],
    pdom: Dict[str, Set[str]],
    model: AliasModel,
    pressure_limit: Optional[int] = None,
    live_out: Optional[Dict[str, Set[Reg]]] = None,
) -> Optional[str]:
    """Choose the highest dominator the slice can legally move to."""
    load = block.instructions[load_position]
    slice_set = set(slice_positions)
    external_reads: Set[Reg] = set()
    internal_dests: Set[Reg] = set()
    for position in slice_positions:
        instruction = block.instructions[position]
        for reg in instruction.reads():
            if reg not in internal_dests:
                external_reads.add(reg)
        if instruction.dest is not None:
            internal_dests.add(instruction.dest)
    # Stores in B before the load always have to be crossed.
    stores_in_b = [
        ins
        for pos, ins in enumerate(block.instructions[:load_position])
        if ins.is_store and pos not in slice_set
    ]
    # External operands must not be (re)defined in B before the slice.
    for position, instruction in enumerate(block.instructions[:load_position]):
        if position in slice_set:
            continue
        if instruction.dest is not None and instruction.dest in external_reads:
            return None

    candidates = sorted(
        (name for name in strict_doms if block.name in pdom.get(name, set())),
        key=lambda name: len(dom[name]),  # fewest dominators = highest
    )
    best: Optional[str] = None
    for name in candidates:
        # Frequency guard: if B sits on a cycle that avoids D, the load
        # executes more often in B than it would in D, and a definition
        # inside that cycle (e.g. the loop induction variable) would be
        # missed — classic illegal loop-invariant motion.  Reject D.
        if _cycle_through_avoiding(program, block.name, name):
            continue
        between = _blocks_between(program, name, block.name)
        # The value of every external operand at the end of the target
        # must equal its value at the load's original position: no path
        # from target to origin may redefine it.  (Defs in B before the
        # slice were already rejected above.)
        if any(
            instruction.dest is not None and instruction.dest in external_reads
            for bname in between
            for instruction in program.block(bname).instructions
        ):
            continue
        blocking = list(stores_in_b) + [
            instruction
            for bname in between
            for instruction in program.block(bname).instructions
            if instruction.is_store
        ]
        if any(model.store_blocks_load(store, load) for store in blocking):
            continue
        if pressure_limit is not None and live_out is not None:
            # The move extends the slice dests' live ranges across the
            # region [target .. B]; refuse if that region is already at
            # the pressure budget for this register class.
            rclass = load.dest.rclass
            region = set(between) | {name}
            pressure = max(
                (
                    sum(1 for reg in live_out[bname] if reg.rclass is rclass)
                    for bname in region
                ),
                default=0,
            )
            if pressure + len(slice_positions) > pressure_limit:
                continue
        best = name
        break  # candidates are ordered highest-first; take the highest legal one
    return best


def _cycle_through_avoiding(program: Program, b: str, d: str) -> bool:
    """True when some cycle passes through ``b`` without touching ``d``."""
    seen: Set[str] = set()
    work = [s for s in program.block(b).successors if s != d]
    while work:
        name = work.pop()
        if name == b:
            return True
        if name in seen or name == d:
            continue
        seen.add(name)
        work.extend(s for s in program.block(name).successors if s != d)
    return False


def _blocks_between(program: Program, top: str, bottom: str) -> Set[str]:
    """Names of blocks that may lie on a path from ``top`` to ``bottom``
    (overapproximate: forward-reachable from top without entering bottom,
    intersected with backward-reachable from bottom without entering top)."""
    forward: Set[str] = set()
    work = list(program.block(top).successors)
    while work:
        name = work.pop()
        if name in forward or name == bottom or name == top:
            continue
        forward.add(name)
        work.extend(program.block(name).successors)
    backward: Set[str] = set()
    work = list(program.block(bottom).predecessors)
    while work:
        name = work.pop()
        if name in backward or name == top or name == bottom:
            continue
        backward.add(name)
        work.extend(program.block(name).predecessors)
    return forward & backward


def _move(
    program: Program, block: BasicBlock, slice_positions: List[int], target: str
) -> None:
    moved = [block.instructions[position] for position in slice_positions]
    for position in reversed(slice_positions):
        del block.instructions[position]
    destination = program.block(target)
    insert_at = len(destination.instructions)
    if destination.terminator is not None:
        insert_at -= 1
    destination.instructions[insert_at:insert_at] = moved
    program.finalize()
