"""If-conversion: turn store-free THEN paths into conditional moves.

The paper observes (Section 3.1, Figure 7) that after the manual load
scheduling the THEN paths of the hot IF statements contain only
register assignments, which lets the compiler replace the conditional
branches with conditional-move instructions — whereas the *original*
code keeps its branches because each THEN path contains a store.

This pass reproduces that behaviour.  Pattern (exactly the shape the
lowering emits for ``if (c) s;``):

* block B ends with ``BR flag -> skip`` (branch if condition *false*),
* the fall-through block T has B as its only predecessor, at most
  ``MAX_CONVERTIBLE`` instructions, no memory accesses, no branches,
  and control flow from T reaches ``skip`` directly.

Conversion renames T's destinations to fresh registers, appends T's
body to B, and emits one CMOV per destination that is live into
``skip``.  Loads are never speculated (a hoisted load could fault),
so a THEN path containing a load or store is left untouched — the
paper's Figure 5 situation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import Reg, RegClass
from repro.lang.passes.analysis import liveness, use_counts

#: Largest THEN block (in instructions) we are willing to if-convert.
MAX_CONVERTIBLE = 8

#: CMP opcode -> its negation.
_CMP_INVERSE = {
    Opcode.CMPEQ: Opcode.CMPNE,
    Opcode.CMPNE: Opcode.CMPEQ,
    Opcode.CMPLT: Opcode.CMPGE,
    Opcode.CMPGE: Opcode.CMPLT,
    Opcode.CMPGT: Opcode.CMPLE,
    Opcode.CMPLE: Opcode.CMPGT,
    Opcode.FCMPEQ: Opcode.FCMPNE,
    Opcode.FCMPNE: Opcode.FCMPEQ,
    Opcode.FCMPLT: Opcode.FCMPGE,
    Opcode.FCMPGE: Opcode.FCMPLT,
    Opcode.FCMPGT: Opcode.FCMPLE,
    Opcode.FCMPLE: Opcode.FCMPGT,
}


def _fresh_reg_allocator(program: Program):
    """Return fresh_reg(rclass) continuing past the largest index in use."""
    highest = {RegClass.INT: -1, RegClass.FLOAT: -1}
    for instruction in program.all_instructions():
        regs = list(instruction.srcs)
        if instruction.dest is not None:
            regs.append(instruction.dest)
        for reg in regs:
            if reg.index > highest[reg.rclass]:
                highest[reg.rclass] = reg.index

    def fresh(rclass: RegClass) -> Reg:
        highest[rclass] += 1
        return Reg(rclass, highest[rclass], virtual=True)

    return fresh


def _convertible(block: BasicBlock, allow_stores: bool) -> bool:
    body = block.body
    if not body or len(body) > MAX_CONVERTIBLE:
        return False
    for instruction in body:
        if instruction.is_store:
            if not allow_stores or instruction.opcode not in (
                Opcode.STORE,
                Opcode.FSTORE,
            ):
                return False
            continue
        if instruction.is_mem or instruction.is_control or instruction.dest is None:
            return False
        if instruction.is_cmov:
            return False  # nested conversion: keep it simple
    terminator = block.terminator
    return terminator is None or terminator.opcode is Opcode.JMP


def run(program: Program, allow_store_predication: bool = False) -> int:
    """If-convert every matching branch; returns conversions performed.

    With ``allow_store_predication`` (the Itanium full-predication mode)
    a store in the THEN path becomes a *predicated* store instead of
    blocking the conversion — reproducing why icc's baseline keeps far
    fewer branches than the Alpha/x86 baselines (Section 5.1).
    """
    conversions = 0
    fresh = _fresh_reg_allocator(program)
    while True:
        program.finalize()
        uses = use_counts(program)
        live_in, _ = liveness(program)
        converted = _convert_one(
            program, fresh, uses, live_in, allow_store_predication
        )
        if not converted:
            break
        conversions += 1
    return conversions


def _convert_one(
    program: Program,
    fresh,
    uses: Dict[Reg, int],
    live_in: Dict[str, Set[Reg]],
    allow_stores: bool,
) -> bool:
    for block in program.blocks:
        terminator = block.terminator
        if terminator is None or terminator.opcode is not Opcode.BR:
            continue
        then_block = program.next_block(block.name)
        if then_block is None or then_block.name == terminator.target:
            continue
        skip_name = terminator.target
        if then_block.predecessors != [block.name]:
            continue
        if then_block.successors != [skip_name]:
            continue
        if not _convertible(then_block, allow_stores):
            continue
        flag = terminator.srcs[0]
        condition = _true_condition(block, flag, uses, fresh)
        if condition is None:
            continue
        _apply(program, block, then_block, skip_name, condition, fresh, live_in)
        return True
    return False


def _true_condition(
    block: BasicBlock, flag: Reg, uses: Dict[Reg, int], fresh
) -> Optional[Reg]:
    """Produce a register that is 1 when the THEN path should execute.

    The branch tests "condition false", so we need the inverse of its
    flag.  Preferred: flip the defining compare in place when the flag
    has no other consumer.  Fallback: ``XOR inv <- flag, 1`` (flags are
    always 0/1 by construction).
    """
    for instruction in reversed(block.body):
        if instruction.dest == flag:
            if instruction.is_cmp and uses.get(flag, 0) == 1:
                instruction.opcode = _CMP_INVERSE[instruction.opcode]
                instruction.refresh()
                return flag
            break
    one = fresh(RegClass.INT)
    inverse = fresh(RegClass.INT)
    block.instructions.insert(
        len(block.instructions) - 1,
        Instruction(Opcode.LI, dest=one, imm=1, line=block.terminator.line),
    )
    block.instructions.insert(
        len(block.instructions) - 1,
        Instruction(
            Opcode.XOR, dest=inverse, srcs=(flag, one), line=block.terminator.line
        ),
    )
    return inverse


def _apply(
    program: Program,
    block: BasicBlock,
    then_block: BasicBlock,
    skip_name: str,
    condition: Reg,
    fresh,
    live_in: Dict[str, Set[Reg]],
) -> None:
    branch = block.instructions.pop()  # the BR
    rename: Dict[Reg, Reg] = {}
    final_name: Dict[Reg, Reg] = {}
    converted: List[Instruction] = []
    for instruction in then_block.body:
        new_srcs = tuple(rename.get(reg, reg) for reg in instruction.srcs)
        if instruction.is_store:
            # Predicate the store on the THEN condition (Itanium mode).
            opcode = (
                Opcode.FCSTORE if instruction.opcode is Opcode.FSTORE else Opcode.CSTORE
            )
            converted.append(
                Instruction(
                    opcode,
                    srcs=new_srcs + (condition,),
                    array=instruction.array,
                    imm=instruction.imm,
                    line=instruction.line,
                )
            )
            continue
        dest = instruction.dest
        new_dest = fresh(dest.rclass)
        rename[dest] = new_dest
        final_name[dest] = new_dest
        converted.append(
            Instruction(
                instruction.opcode,
                dest=new_dest,
                srcs=new_srcs,
                imm=instruction.imm,
                line=instruction.line,
            )
        )
    block.instructions.extend(converted)
    live = live_in.get(skip_name, set())
    for original, renamed in final_name.items():
        if original not in live:
            continue
        opcode = Opcode.FCMOV if original.rclass is RegClass.FLOAT else Opcode.CMOV
        block.instructions.append(
            Instruction(
                opcode,
                dest=original,
                srcs=(condition, renamed),
                line=branch.line,
            )
        )
    # Fall through (or jump) to the join block, bypassing T entirely.
    following = program.next_block(then_block.name)
    if following is None or following.name != skip_name:
        block.instructions.append(
            Instruction(Opcode.JMP, target=skip_name, line=branch.line)
        )
    program.replace_blocks([b for b in program.blocks if b.name != then_block.name])
