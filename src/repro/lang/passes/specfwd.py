"""Speculative (data-speculation) store-to-load forwarding.

Models icc's Itanium advanced loads (``ld.a``/``chk.a``, Section 5.1 of
the paper): on a machine with an ALAT, the compiler can keep a stored
value in a register across *possibly*-aliasing stores to other arrays
and let the hardware detect the (in our kernels, never-occurring)
conflicts.  Combined with predication this removes the serial
store->load->compare chains from the baseline code, which is exactly
why the paper's Itanium baseline is much closer to the transformed code
than a naive in-order compile would be.

Per block, tracking exact symbolic addresses (array, index register,
displacement):

* a plain store records its value register;
* a *predicated* store merges: the tracked value becomes
  ``MOV t <- old; CMOV t <- (pred, new)`` — predicate-aware forwarding;
* a load whose address is tracked becomes a register move;
* a store to the same array with an unrelated index kills that array's
  entries (no ALAT entry survives a definite same-array conflict);
  stores to *other* arrays do not kill (that is the data speculation).

Only enabled when the target supports predication + data speculation
(the Itanium of Table 7).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg, RegClass
from repro.lang.passes.cmov import _fresh_reg_allocator

_KEY = Tuple[str, Reg, int]  # (array, index register, displacement)


def run(program: Program) -> int:
    """Forward stored values to later loads; returns loads removed."""
    fresh = _fresh_reg_allocator(program)
    removed = 0
    for block in program.blocks:
        removed += _forward_block(block, fresh)
    program.finalize()
    return removed


def _forward_block(block, fresh) -> int:
    tracked: Dict[_KEY, Reg] = {}
    removed = 0
    out = []
    for instruction in block.instructions:
        op = instruction.opcode
        # A redefined register invalidates entries holding it.
        if instruction.dest is not None:
            for key in [k for k, v in tracked.items() if v == instruction.dest]:
                del tracked[key]

        if op in (Opcode.STORE, Opcode.FSTORE):
            key = (instruction.array, instruction.srcs[1], instruction.imm or 0)
            _kill_same_array(tracked, key)
            tracked[key] = instruction.srcs[0]
            out.append(instruction)
            continue
        if op in (Opcode.CSTORE, Opcode.FCSTORE):
            value, index, pred = instruction.srcs
            key = (instruction.array, index, instruction.imm or 0)
            prior = tracked.get(key)
            _kill_same_array(tracked, key)
            out.append(instruction)
            if prior is not None:
                is_float = op is Opcode.FCSTORE
                rclass = RegClass.FLOAT if is_float else RegClass.INT
                merged = fresh(rclass)
                out.append(
                    Instruction(
                        Opcode.FMOV if is_float else Opcode.MOV,
                        dest=merged,
                        srcs=(prior,),
                        line=instruction.line,
                    )
                )
                out.append(
                    Instruction(
                        Opcode.FCMOV if is_float else Opcode.CMOV,
                        dest=merged,
                        srcs=(pred, value),
                        line=instruction.line,
                    )
                )
                tracked[key] = merged
            continue
        if op in (Opcode.LOAD, Opcode.FLOAD):
            key = (instruction.array, instruction.srcs[0], instruction.imm or 0)
            value = tracked.get(key)
            if value is not None and value.rclass is instruction.dest.rclass:
                out.append(
                    Instruction(
                        Opcode.FMOV if op is Opcode.FLOAD else Opcode.MOV,
                        dest=instruction.dest,
                        srcs=(value,),
                        line=instruction.line,
                    )
                )
                removed += 1
                continue
            # The loaded value is now known for this address.
            _kill_same_array(tracked, key)
            tracked[key] = instruction.dest
            out.append(instruction)
            continue
        out.append(instruction)
    block.instructions = out
    return removed


def _kill_same_array(tracked: Dict[_KEY, Reg], key: _KEY) -> None:
    """Remove entries of the same array whose relation to ``key`` is
    unknown (different index register) or identical (being replaced).
    Same index register with a different displacement provably refers
    to a different element and survives."""
    array, index, imm = key
    for existing in list(tracked):
        e_array, e_index, e_imm = existing
        if e_array != array:
            continue  # other arrays survive: ALAT-backed data speculation
        if e_index == index and e_imm != imm:
            continue
        del tracked[existing]
