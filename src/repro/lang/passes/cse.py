"""Local common-subexpression and redundant-load elimination.

Per basic block:

* pure ALU instructions with identical (opcode, sources, immediate) are
  replaced by a MOV from the first computation;
* a load is replaced by a MOV when the same symbolic address was loaded
  earlier in the block and no intervening store may alias it (this is
  where the alias model matters: in ``may-alias`` mode *any* store
  kills *all* remembered loads of other arrays, which is exactly the
  conservatism the paper attributes to production compilers);
* a load that exactly matches a prior store's symbolic address forwards
  the stored value (store-to-load forwarding is legal even under
  may-alias because identical symbolic addresses denote one element).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.lang.alias import AliasModel
from repro.lang.passes.analysis import is_pure


def run(program: Program, model: AliasModel) -> int:
    """Apply local CSE; returns number of instructions simplified."""
    simplified = 0
    for block in program.blocks:
        available: Dict[Tuple, Reg] = {}
        remembered_loads: list = []  # (instruction, key)
        last_stores: list = []  # store instructions, newest last
        forwarded: Dict[Tuple, Reg] = {}  # exact address key -> value reg

        def mentions(key: Tuple, reg: Reg) -> bool:
            # Keys nest source registers inside tuples, e.g.
            # (ADD, (r1, r2), imm) or (LOAD, array, (r1,), imm).
            for part in key:
                if part == reg:
                    return True
                if isinstance(part, tuple) and reg in part:
                    return True
            return False

        def invalidate_reg(reg: Reg) -> None:
            for key in [k for k, v in available.items() if v == reg or mentions(k, reg)]:
                del available[key]
            for key in [k for k, v in forwarded.items() if v == reg or mentions(k, reg)]:
                del forwarded[key]
            remembered_loads[:] = [
                (ins, key) for (ins, key) in remembered_loads
                if ins.dest != reg and not mentions(key, reg)
            ]

        for position, instruction in enumerate(block.instructions):
            op = instruction.opcode
            dest = instruction.dest
            if instruction.is_load:
                key = (op, instruction.array, instruction.srcs, instruction.imm or 0)
                if key in forwarded:
                    block.instructions[position] = Instruction(
                        Opcode.FMOV if op is Opcode.FLOAD else Opcode.MOV,
                        dest=dest,
                        srcs=(forwarded[key],),
                        line=instruction.line,
                    )
                    simplified += 1
                    invalidate_reg(dest)
                    continue
                if key in available:
                    block.instructions[position] = Instruction(
                        Opcode.FMOV if op is Opcode.FLOAD else Opcode.MOV,
                        dest=dest,
                        srcs=(available[key],),
                        line=instruction.line,
                    )
                    simplified += 1
                    invalidate_reg(dest)
                    continue
                invalidate_reg(dest)
                available[key] = dest
                remembered_loads.append((instruction, key))
                continue
            if instruction.is_store:
                # Kill remembered loads the store may alias.
                for load_instr, key in list(remembered_loads):
                    if model.store_blocks_load(instruction, load_instr):
                        available.pop(key, None)
                        remembered_loads.remove((load_instr, key))
                for key in [k for k in forwarded if not _forward_survives(k, instruction)]:
                    del forwarded[key]
                if op in (Opcode.STORE, Opcode.FSTORE):
                    # Predicated stores may not execute, so only plain
                    # stores establish a forwardable value.
                    fkey = (
                        Opcode.FLOAD if op is Opcode.FSTORE else Opcode.LOAD,
                        instruction.array,
                        (instruction.srcs[1],),
                        instruction.imm or 0,
                    )
                    forwarded[fkey] = instruction.srcs[0]
                continue
            if dest is not None and is_pure(instruction) and not instruction.is_cmov:
                key = (op, instruction.srcs, instruction.imm)
                if op not in (Opcode.MOV, Opcode.FMOV, Opcode.LI, Opcode.FLI):
                    if key in available and available[key] != dest:
                        block.instructions[position] = Instruction(
                            Opcode.FMOV if instruction.is_fp and not instruction.is_cmp else Opcode.MOV,
                            dest=dest,
                            srcs=(available[key],),
                            line=instruction.line,
                        )
                        simplified += 1
                        invalidate_reg(dest)
                        continue
                    invalidate_reg(dest)
                    available[key] = dest
                    continue
            if dest is not None:
                invalidate_reg(dest)
    return simplified


def _forward_survives(key: Tuple, store: Instruction) -> bool:
    """Does a forwarded (address -> value) fact survive this store?

    Safe rule: it survives only when the store provably writes a
    *different* element of the *same* array (same index register,
    different constant offset).  Any other store kills the entry —
    including a store to the identical element, which the caller then
    re-records with the new value.  This conservatism matches the
    may-alias compiler behaviour the paper describes.
    """
    _, array, srcs, imm = key
    return (
        store.array == array
        and store.srcs[1:] == srcs
        and (store.imm or 0) != imm
    )
