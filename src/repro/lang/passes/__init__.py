"""Optimization passes over ISA programs."""
