"""Within-block list scheduling (the compiler's local code scheduling).

Reorders the instructions of each basic block so that long-latency
instructions — loads above all — issue as early as their dependences
allow, modelling the "local code scheduling" the paper credits
optimizing compilers with (Section 1).  Ordering constraints:

* register RAW/WAR/WAW dependences,
* memory dependences according to the alias model (store-store always
  ordered; load-store ordered when they may alias),
* the block terminator stays last.

Priority is critical-path height with per-opcode latencies, so a load
that feeds a compare that feeds the terminator gets scheduled first —
the best a compiler can do *within* the block, which is precisely not
enough when the dependence chain is load->cmp->branch (Figure 3).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.lang.alias import AliasModel

#: Scheduling latencies (weights for the priority function only).
_LATENCY = {
    Opcode.LOAD: 3,
    Opcode.FLOAD: 3,
    Opcode.MUL: 3,
    Opcode.DIV: 8,
    Opcode.MOD: 8,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
}


def _latency(instruction: Instruction) -> int:
    return _LATENCY.get(instruction.opcode, 1)


def run(program: Program, model: AliasModel) -> int:
    """Schedule every block; returns how many blocks changed order."""
    changed_blocks = 0
    for block in program.blocks:
        body = block.body
        if len(body) < 2:
            continue
        order = _schedule_block(body, model)
        if order != list(range(len(body))):
            terminator = block.terminator
            new_instructions = [body[i] for i in order]
            if terminator is not None:
                new_instructions.append(terminator)
            block.instructions = new_instructions
            changed_blocks += 1
    if changed_blocks:
        program.finalize()
    return changed_blocks


def _schedule_block(body: List[Instruction], model: AliasModel) -> List[int]:
    n = len(body)
    successors: List[Set[int]] = [set() for _ in range(n)]
    pred_count = [0] * n

    def add_edge(earlier: int, later: int) -> None:
        if later not in successors[earlier]:
            successors[earlier].add(later)
            pred_count[later] += 1

    last_def: Dict = {}
    readers: Dict = {}
    mem_writes: List[int] = []
    mem_reads: List[int] = []
    for i, instruction in enumerate(body):
        for reg in instruction.reads():
            if reg in last_def:
                add_edge(last_def[reg], i)  # RAW
            readers.setdefault(reg, []).append(i)
        dest = instruction.dest
        if dest is not None:
            if dest in last_def:
                add_edge(last_def[dest], i)  # WAW
            for reader in readers.get(dest, ()):  # WAR
                if reader != i:
                    add_edge(reader, i)
            last_def[dest] = i
            readers[dest] = []
        if instruction.is_store:
            for j in mem_writes:
                add_edge(j, i)  # store-store: keep ordered
            for j in mem_reads:
                if model.store_blocks_load(instruction, body[j]):
                    add_edge(j, i)  # load-store WAR
            mem_writes.append(i)
        elif instruction.is_load:
            for j in mem_writes:
                if model.store_blocks_load(body[j], instruction):
                    add_edge(j, i)  # store-load RAW
            mem_reads.append(i)

    # Critical-path height (latency-weighted longest path to any sink).
    height = [0] * n
    for i in range(n - 1, -1, -1):
        tail = max((height[j] for j in successors[i]), default=0)
        height[i] = _latency(body[i]) + tail

    # Cycle-aware list scheduling: instructions become *ready* when their
    # dependence predecessors are scheduled, and *available* when those
    # predecessors' results have materialized.  Preferring available
    # instructions minimizes stalls on an in-order machine (and is what
    # production schedulers do); among available ones the highest
    # critical path goes first, original position breaking ties.
    ready_time = [0] * n
    ready = [i for i in range(n) if pred_count[i] == 0]
    order: List[int] = []
    clock = 0
    while ready:
        available = [i for i in ready if ready_time[i] <= clock]
        if not available:
            clock = min(ready_time[i] for i in ready)
            available = [i for i in ready if ready_time[i] <= clock]
        available.sort(key=lambda i: (-height[i], i))
        chosen = available[0]
        ready.remove(chosen)
        order.append(chosen)
        completion = max(clock, ready_time[chosen]) + _latency(body[chosen])
        for successor in successors[chosen]:
            if completion > ready_time[successor]:
                ready_time[successor] = completion
            pred_count[successor] -= 1
            if pred_count[successor] == 0:
                ready.append(successor)
    if len(order) != n:  # pragma: no cover - dependence graph is acyclic
        raise AssertionError("scheduling dependence graph had a cycle")
    return order
