"""Dead-code elimination and CFG simplification.

Three cooperating cleanups, iterated to a fixed point:

1. unreachable-block removal,
2. trivial-jump threading (a block whose only instruction is ``JMP X``
   is bypassed) and removal of jumps to the next block in layout order
   (fall-through), which keeps the dynamic instruction stream close to
   what a real code generator emits,
3. deletion of pure instructions whose destination register is never
   read anywhere in the program.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import BasicBlock, Program
from repro.lang.passes.analysis import is_pure, reachable_blocks, use_counts


def run(program: Program) -> int:
    """Clean the program; returns the number of instructions removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        removed += _remove_unreachable(program)
        if _thread_trivial_jumps(program):
            changed = True
        removed += _drop_fallthrough_jumps(program)
        merged = _merge_straightline(program)
        removed += merged
        if merged:
            changed = True
        dead = _remove_dead_instructions(program)
        removed += dead
        if dead:
            changed = True
    program.finalize()
    return removed


def _merge_straightline(program: Program) -> int:
    """Merge B and S when B's only successor is S and S's only
    predecessor is B.  This grows basic blocks across unconditional
    control flow (a light-weight stand-in for trace formation), which
    gives the local scheduler room to interleave independent work —
    the effect the paper's transformed code relies on."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in program.blocks:
            if len(block.successors) != 1:
                continue
            succ_name = block.successors[0]
            if succ_name == block.name or succ_name == program.entry.name:
                continue
            successor = program.block(succ_name)
            if successor.predecessors != [block.name]:
                continue
            terminator = block.terminator
            if terminator is not None:
                if terminator.opcode is not Opcode.JMP:
                    continue
                block.instructions.pop()
                removed += 1
            block.instructions.extend(successor.instructions)
            program.replace_blocks(
                [b for b in program.blocks if b.name != succ_name]
            )
            changed = True
            break
    return removed


def _remove_unreachable(program: Program) -> int:
    reachable = reachable_blocks(program)
    keep = [block for block in program.blocks if block.name in reachable]
    removed = sum(len(block) for block in program.blocks) - sum(len(b) for b in keep)
    if len(keep) != len(program.blocks):
        program.replace_blocks(keep)
    return removed


def _thread_trivial_jumps(program: Program) -> bool:
    """Redirect edges that target a block containing only ``JMP X``."""
    forward: Dict[str, str] = {}
    for block in program.blocks:
        if len(block.instructions) == 1 and block.instructions[0].opcode is Opcode.JMP:
            forward[block.name] = block.instructions[0].target

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    changed = False
    for block in program.blocks:
        terminator = block.terminator
        if terminator is not None and terminator.target is not None:
            resolved = resolve(terminator.target)
            if resolved != terminator.target:
                terminator.target = resolved
                changed = True
    if changed:
        program.finalize()
    return changed


def _drop_fallthrough_jumps(program: Program) -> int:
    """Remove a trailing ``JMP`` that targets the next block in layout."""
    removed = 0
    for block in program.blocks:
        terminator = block.terminator
        if terminator is not None and terminator.opcode is Opcode.JMP:
            following = program.next_block(block.name)
            if following is not None and following.name == terminator.target:
                block.instructions.pop()
                removed += 1
    if removed:
        program.finalize()
    return removed


def _remove_dead_instructions(program: Program) -> int:
    removed = 0
    while True:
        uses = use_counts(program)
        round_removed = 0
        for block in program.blocks:
            keep: List[Instruction] = []
            for instruction in block.instructions:
                dest = instruction.dest
                if (
                    dest is not None
                    and is_pure(instruction)
                    and uses.get(dest, 0) == 0
                ):
                    round_removed += 1
                    continue
                keep.append(instruction)
            block.instructions = keep
        removed += round_removed
        if not round_removed:
            return removed
