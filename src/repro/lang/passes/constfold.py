"""Constant folding and local copy propagation.

Runs block-locally (registers are multiply defined, so cross-block
assumptions would be unsound without SSA): tracks registers whose value
is a known constant (from LI/FLI) and registers that are copies of
other registers (from MOV/FMOV), folds pure arithmetic over constants
into immediates, and rewrites uses of copies to their sources.  Copy
propagation shortens dependence chains the same way a real compiler's
coalescing does, which matters to the timing model.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.exec.interpreter import _trunc_div

Number = Union[int, float]

_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.SHR: lambda a, b: a >> b,
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPNE: lambda a, b: 1 if a != b else 0,
    Opcode.CMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.CMPGT: lambda a, b: 1 if a > b else 0,
    Opcode.CMPGE: lambda a, b: 1 if a >= b else 0,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FCMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.FCMPNE: lambda a, b: 1 if a != b else 0,
    Opcode.FCMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.FCMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.FCMPGT: lambda a, b: 1 if a > b else 0,
    Opcode.FCMPGE: lambda a, b: 1 if a >= b else 0,
}

_FOLDABLE_UNARY = {
    Opcode.NEG: lambda a: -a,
    Opcode.FNEG: lambda a: -a,
    Opcode.CVTIF: float,
    Opcode.CVTFI: int,
}


def run(program: Program) -> int:
    """Fold constants; returns the number of instructions rewritten."""
    rewritten = 0
    for block in program.blocks:
        constants: Dict[Reg, Number] = {}
        copies: Dict[Reg, Reg] = {}

        def canonical(reg: Reg) -> Reg:
            seen = set()
            while reg in copies and reg not in seen:
                seen.add(reg)
                reg = copies[reg]
            return reg

        def invalidate(reg: Reg) -> None:
            constants.pop(reg, None)
            copies.pop(reg, None)
            for key, value in list(copies.items()):
                if value == reg:
                    del copies[key]

        for position, instruction in enumerate(block.instructions):
            # Rewrite sources through known copies first.
            if instruction.srcs:
                new_srcs = tuple(canonical(reg) for reg in instruction.srcs)
                if new_srcs != instruction.srcs:
                    instruction.srcs = new_srcs
                    instruction.refresh()
                    rewritten += 1
            op = instruction.opcode
            dest = instruction.dest
            if op in (Opcode.LI, Opcode.FLI):
                invalidate(dest)
                constants[dest] = instruction.imm
                continue
            if op in (Opcode.MOV, Opcode.FMOV):
                src = instruction.srcs[0]
                invalidate(dest)
                if src in constants:
                    block.instructions[position] = Instruction(
                        Opcode.LI if op is Opcode.MOV else Opcode.FLI,
                        dest=dest,
                        imm=constants[src],
                        line=instruction.line,
                    )
                    constants[dest] = constants[src]
                    rewritten += 1
                else:
                    copies[dest] = src
                continue
            folded = _try_fold(instruction, constants)
            if folded is not None:
                invalidate(dest)
                block.instructions[position] = folded
                constants[dest] = folded.imm
                rewritten += 1
                continue
            if dest is not None:
                invalidate(dest)
    return rewritten


def _try_fold(
    instruction: Instruction, constants: Dict[Reg, Number]
) -> Optional[Instruction]:
    op = instruction.opcode
    if op in _FOLDABLE and len(instruction.srcs) == 2:
        a, b = instruction.srcs
        if a in constants and b in constants:
            value = _FOLDABLE[op](constants[a], constants[b])
            imm_op = Opcode.FLI if instruction.is_fp and not instruction.is_cmp else Opcode.LI
            return Instruction(imm_op, dest=instruction.dest, imm=value, line=instruction.line)
    if op is Opcode.DIV and len(instruction.srcs) == 2:
        a, b = instruction.srcs
        if a in constants and b in constants and constants[b] != 0:
            return Instruction(
                Opcode.LI,
                dest=instruction.dest,
                imm=_trunc_div(constants[a], constants[b]),
                line=instruction.line,
            )
    if op in _FOLDABLE_UNARY and len(instruction.srcs) == 1:
        (a,) = instruction.srcs
        if a in constants:
            value = _FOLDABLE_UNARY[op](constants[a])
            imm_op = Opcode.FLI if op in (Opcode.FNEG, Opcode.CVTIF) else Opcode.LI
            return Instruction(imm_op, dest=instruction.dest, imm=value, line=instruction.line)
    return None
