"""Shared dataflow analyses used by the optimization passes."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import Reg

#: Opcodes with observable effects (never deletable by DCE).
EFFECTFUL = frozenset(
    {
        Opcode.STORE,
        Opcode.FSTORE,
        Opcode.CSTORE,
        Opcode.FCSTORE,
        Opcode.BR,
        Opcode.JMP,
        Opcode.HALT,
    }
)


def is_pure(instruction: Instruction) -> bool:
    """True when the instruction's only effect is writing its dest.

    Loads are treated as pure for *deletion* purposes (removing an
    unused load cannot change program results in our memory model) —
    exactly what a compiler assumes when it deletes dead loads.
    """
    return instruction.opcode not in EFFECTFUL


def def_counts(program: Program) -> Dict[Reg, int]:
    """Static definition count of every register."""
    counts: Dict[Reg, int] = defaultdict(int)
    for instruction in program.all_instructions():
        if instruction.dest is not None:
            counts[instruction.dest] += 1
    return counts


def use_counts(program: Program) -> Dict[Reg, int]:
    """Static read count of every register (CMOV counts its dest)."""
    counts: Dict[Reg, int] = defaultdict(int)
    for instruction in program.all_instructions():
        for reg in instruction.reads():
            counts[reg] += 1
    return counts


def block_uses_defs(block: BasicBlock) -> Tuple[Set[Reg], Set[Reg]]:
    """(upward-exposed uses, defs) of one block."""
    uses: Set[Reg] = set()
    defs: Set[Reg] = set()
    for instruction in block.instructions:
        for reg in instruction.reads():
            if reg not in defs:
                uses.add(reg)
        if instruction.dest is not None:
            defs.add(instruction.dest)
    return uses, defs


def liveness(program: Program) -> Tuple[Dict[str, Set[Reg]], Dict[str, Set[Reg]]]:
    """Per-block live-in / live-out sets (backward dataflow)."""
    use_map: Dict[str, Set[Reg]] = {}
    def_map: Dict[str, Set[Reg]] = {}
    for block in program.blocks:
        uses, defs = block_uses_defs(block)
        use_map[block.name] = uses
        def_map[block.name] = defs
    live_in: Dict[str, Set[Reg]] = {b.name: set() for b in program.blocks}
    live_out: Dict[str, Set[Reg]] = {b.name: set() for b in program.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(program.blocks):
            name = block.name
            out: Set[Reg] = set()
            for successor in block.successors:
                out |= live_in[successor]
            new_in = use_map[name] | (out - def_map[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return live_in, live_out


def reachable_blocks(program: Program) -> Set[str]:
    """Block names reachable from the entry block."""
    seen: Set[str] = set()
    work: List[str] = [program.entry.name]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        work.extend(program.block(name).successors)
    return seen
