"""Loop unrolling (off by default; an ablation-grade extension).

The paper's baselines were compiled with flags that include loop
unrolling ("-O3 … loop unrolling" on the Alpha), and one natural
question about the source-level load scheduling is how it interacts
with an unrolled loop body (more independent work per iteration is
exactly what the scheduler wants).  This pass unrolls the simple
counted-loop shape our lowering emits:

    head:  <cmp i, bound>; BR flag -> exit
    body…  (any straight-line run of blocks ending back at head)
    latch: i = i + step; JMP head

by replicating body+latch ``factor`` times and re-checking the exit
condition between copies (a conservative "unroll with tests" scheme: no
remainder loop, no trip-count proofs needed, always legal).

Enabled with ``CompilerOptions(unroll_factor=N)``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import BasicBlock, Program

#: Do not unroll loops whose body exceeds this many instructions.
MAX_BODY = 60
#: Upper bound on loops unrolled per program (safety valve).
MAX_LOOPS = 8


def run(program: Program, factor: int) -> int:
    """Unroll up to MAX_LOOPS simple loops; returns loops unrolled."""
    if factor < 2:
        return 0
    unrolled = 0
    for _ in range(MAX_LOOPS):
        loop = _find_simple_loop(program)
        if loop is None:
            break
        _unroll(program, loop, factor)
        unrolled += 1
    if unrolled:
        program.finalize()
    return unrolled


def _find_simple_loop(program: Program) -> Optional[Tuple[str, List[str]]]:
    """Find (head, [body blocks…]) for the lowered counted-loop shape:
    head ends with BR->exit; the fall-through chain of single-successor
    blocks returns to head; no other entries into the body."""
    program.finalize()
    for head in program.blocks:
        terminator = head.terminator
        if terminator is None or terminator.opcode is not Opcode.BR:
            continue
        if getattr(head, "_unrolled", False):
            continue
        chain: List[str] = []
        current = program.next_block(head.name)
        size = 0
        ok = False
        while current is not None:
            if current.name == head.name:
                break
            successors = current.successors
            preds_ok = (
                len(current.predecessors) == 1
                or (not chain and current.predecessors == [head.name])
            )
            if not preds_ok:
                break
            chain.append(current.name)
            size += len(current.instructions)
            if size > MAX_BODY:
                break
            if successors == [head.name]:
                ok = True
                break
            if len(successors) != 1:
                break
            current = program.block(successors[0])
        if ok and chain:
            return head.name, chain
    return None


def _unroll(program: Program, loop: Tuple[str, List[str]], factor: int) -> None:
    head_name, chain = loop
    head = program.block(head_name)
    head._unrolled = True  # type: ignore[attr-defined]
    exit_target = head.terminator.target

    # The head's compare+branch (the exit test), re-emitted between copies.
    test_instrs = [replace(i) for i in head.instructions]

    new_blocks: List[BasicBlock] = []
    suffix = 0
    for copy in range(1, factor):
        # Re-test block (same semantics as the loop head).
        suffix += 1
        test_block = BasicBlock(f"{head_name}.u{suffix}")
        for instruction in test_instrs:
            test_block.append(replace(instruction, target=instruction.target))
        new_blocks.append(test_block)
        # Body copy.
        for name in chain:
            suffix += 1
            source = program.block(name)
            body_copy = BasicBlock(f"{name}.u{suffix}")
            for instruction in source.instructions:
                clone = replace(instruction)
                if clone.opcode is Opcode.JMP and clone.target == head_name:
                    # Last copy's back edge returns to the real head;
                    # intermediate copies fall through to the next test.
                    if copy == factor - 1 and name == chain[-1]:
                        body_copy.append(clone)
                        continue
                    if name == chain[-1]:
                        continue  # fall through to the next test block
                body_copy.append(clone)
            new_blocks.append(body_copy)

    # Splice the copies after the last original body block.
    position = program.block_position(chain[-1]) + 1
    blocks = list(program.blocks)
    # The original latch's back edge now falls through into copy 1's test.
    last_original = program.block(chain[-1])
    if (
        last_original.terminator is not None
        and last_original.terminator.opcode is Opcode.JMP
        and last_original.terminator.target == head_name
    ):
        last_original.instructions.pop()
    blocks[position:position] = new_blocks
    program.replace_blocks(blocks)