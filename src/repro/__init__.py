"""repro: reproduction of 'Load Instruction Characterization and
Acceleration of the BioPerf Programs' (IISWC 2006).

See README.md for the tour and DESIGN.md for the architecture.  The
public surface is re-exported from the subpackages:

* :mod:`repro.lang` — the MiniC compiler,
* :mod:`repro.exec` — the interpreter / trace events,
* :mod:`repro.atom` — characterization tools,
* :mod:`repro.cache`, :mod:`repro.branch`, :mod:`repro.cpu` — the
  simulated machines,
* :mod:`repro.workloads` — the BioPerf-like kernels,
* :mod:`repro.core` — the paper's methodology and experiments,
* :mod:`repro.valuepred` — the Section 6 value-prediction extension,
* :mod:`repro.obs` — telemetry: tracing spans, metrics, run
  manifests, and the benchmark regression gate.
"""

__version__ = "1.0.0"
