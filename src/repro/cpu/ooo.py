"""Trace-driven out-of-order timing model.

A register-renamed dataflow model with the front-end and capacity
constraints that produce the paper's effect:

* instructions are fetched in trace order, ``fetch_width`` per cycle;
* after a *mispredicted* branch, fetch stalls until the branch resolves
  (its condition operands — typically loads — are ready and it has
  executed) plus the pipeline-refill penalty.  This is the mechanism of
  Section 2.2.1: a load feeding a mispredicted branch adds its L1 hit
  latency to the misprediction penalty, and loads fetched right after
  the redirect find an empty window with nothing to hide their latency;
* an instruction cannot dispatch until the instruction ``window``
  positions older has completed (reorder-buffer capacity);
* at most ``issue_width`` instructions issue per cycle;
* loads take the latency of the cache level that serves them (integer
  and FP L1 hit latencies differ per platform, Table 7); a load also
  waits for the youngest earlier store to its address (store-to-load
  forwarding at the store's completion).

The model deliberately omits features irrelevant to the studied effect
(TLBs, instruction cache, load/store queue occupancy, replay traps);
Section 5 of DESIGN.md discusses the resulting fidelity envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.branch.predictors import (
    BasePredictor,
    Hybrid,
    LoadDrivenBranchPredictor,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.platforms import PlatformConfig
from repro.exec.trace import TraceEvent
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg


@dataclass
class TimingResult:
    """Cycle-level outcome of one simulated run."""

    platform: str
    cycles: int
    instructions: int
    branch_executions: int
    branch_mispredictions: int
    l1_load_miss_rate: float
    spilled: bool = False

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        if not self.branch_executions:
            return 0.0
        return self.branch_mispredictions / self.branch_executions

    def seconds(self, clock_ghz: float) -> float:
        """Pseudo-seconds at the platform clock (Table 8 analogue)."""
        return self.cycles / (clock_ghz * 1e9)


class OoOTimingModel:
    """Consumer implementing the out-of-order timing model."""

    def __init__(
        self,
        platform: PlatformConfig,
        predictor: Optional[BasePredictor] = None,
        hierarchy: Optional[CacheHierarchy] = None,
    ):
        self.platform = platform
        self.predictor = predictor or Hybrid(aliased=False)
        self.hierarchy = hierarchy or platform.hierarchy()
        #: A load-driven predictor learns from the instruction stream
        #: itself (committed load values/addresses and register writes),
        #: so the model feeds it every event, not just branches.
        self._ldbp = isinstance(self.predictor, LoadDrivenBranchPredictor)

        self._reg_ready: Dict[Reg, int] = {}
        self._store_ready: Dict[int, int] = {}
        self._issued_in_cycle: Dict[int, int] = {}
        self._ring = [0] * platform.window  # completion time of i-window
        self._index = 0
        self._fetch_cycle = 0
        self._fetch_slot = 0
        self._last_complete = 0
        self._prune_at = 1_000_000

    # -- public results -----------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self._last_complete

    def result(self) -> TimingResult:
        return TimingResult(
            platform=self.platform.name,
            cycles=self._last_complete,
            instructions=self._index,
            branch_executions=self.predictor.global_stats.executed,
            branch_mispredictions=self.predictor.global_stats.mispredicted,
            l1_load_miss_rate=self.hierarchy.l1_local_miss_rate,
        )

    # -- the model ---------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        platform = self.platform
        instr = event.instr
        index = self._index
        self._index = index + 1

        # Front end: in-order fetch, fetch_width per cycle, stalled while
        # the instruction window is full (the slot we are about to reuse
        # must have retired).
        fetch = self._fetch_cycle
        window_limit = self._ring[index % platform.window]
        if window_limit > fetch:
            fetch = window_limit
            self._fetch_cycle = fetch
            self._fetch_slot = 0
        ready = fetch + 1  # decode/rename stage

        reg_ready = self._reg_ready
        for src in instr.reads():
            t = reg_ready.get(src, 0)
            if t > ready:
                ready = t

        opcode = instr.opcode
        addr = event.addr
        if self._ldbp:
            if instr.is_load:
                self.predictor.on_load(instr, event.value, addr)
            elif not instr.is_store and opcode is not Opcode.BR:
                self.predictor.on_step(instr)
        if instr.is_load:
            if addr in self._store_ready:
                t = self._store_ready[addr] + platform.store_forward_penalty
                if t > ready:
                    ready = t
            level = self.hierarchy.access(addr, is_write=False, is_load=True)
            if level == 1:
                latency = (
                    platform.l1_hit_fp if opcode is Opcode.FLOAD else platform.l1_hit_int
                )
            elif level == 2:
                latency = platform.l1_hit_int + platform.l2_latency
            else:
                latency = (
                    platform.l1_hit_int + platform.l2_latency + platform.memory_latency
                )
        elif instr.is_store:
            if addr is not None:
                self.hierarchy.access(addr, is_write=True, is_load=False)
            latency = 1  # store buffer: retire without stalling
        else:
            latency = platform.op_latency(opcode)

        issue = self._choose_issue(ready)
        complete = issue + latency

        dest = instr.dest
        if dest is not None:
            reg_ready[dest] = complete
        if instr.is_store and addr is not None:
            self._store_ready[addr] = complete

        if opcode is Opcode.BR:
            if self._ldbp:
                correct = self.predictor.access_branch(instr, event.taken)
            else:
                correct = self.predictor.access(instr.sid, event.taken)
            if not correct:
                # Squash: fetch resumes after resolution plus refill.
                redirect = complete + platform.mispredict_penalty
                if redirect > self._fetch_cycle:
                    self._fetch_cycle = redirect
                    self._fetch_slot = 0
        self._advance_fetch()

        self._ring[index % platform.window] = complete
        if complete > self._last_complete:
            self._last_complete = complete
        if index >= self._prune_at:
            self._prune()

    def _choose_issue(self, ready: int) -> int:
        """Earliest cycle >= ready with a free issue slot (out of order:
        older unready instructions do not block younger ready ones)."""
        issued = self._issued_in_cycle
        width = self.platform.issue_width
        issue = ready
        while issued.get(issue, 0) >= width:
            issue += 1
        issued[issue] = issued.get(issue, 0) + 1
        return issue

    def _advance_fetch(self) -> None:
        self._fetch_slot += 1
        if self._fetch_slot >= self.platform.fetch_width:
            self._fetch_slot = 0
            self._fetch_cycle += 1

    def _prune(self) -> None:
        """Bound the issue calendar and store map."""
        self._prune_at = self._index + 1_000_000
        horizon = self._fetch_cycle - 4 * self.platform.window
        self._issued_in_cycle = {
            cycle: count
            for cycle, count in self._issued_in_cycle.items()
            if cycle >= horizon
        }
        self._store_ready = {
            addr: t for addr, t in self._store_ready.items() if t >= horizon
        }
