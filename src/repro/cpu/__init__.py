"""Trace-driven CPU timing models and the Table 7 evaluation platforms."""

from repro.cpu.inorder import InOrderTimingModel
from repro.cpu.ooo import OoOTimingModel, TimingResult
from repro.cpu.platforms import (
    ALPHA_21264,
    ITANIUM_2,
    PENTIUM_4,
    PLATFORMS,
    POWERPC_G5,
    PlatformConfig,
    get_platform,
    make_timing_model,
)

__all__ = [
    "ALPHA_21264",
    "ITANIUM_2",
    "InOrderTimingModel",
    "OoOTimingModel",
    "PENTIUM_4",
    "PLATFORMS",
    "POWERPC_G5",
    "PlatformConfig",
    "TimingResult",
    "get_platform",
    "make_timing_model",
]
