"""Trace-driven in-order timing model (the Itanium 2 of Table 7).

Identical to the out-of-order model except for the issue discipline:
instructions issue strictly in program order, so an instruction whose
operands are not ready stalls every younger instruction.  This is the
classic in-order exposure of load latency the paper discusses in
Section 5.1 — the Itanium gains from the source transformation not by
avoiding speculation but because the enlarged basic blocks put more
independent instructions between a load and its use.
"""

from __future__ import annotations

from repro.cpu.ooo import OoOTimingModel


class InOrderTimingModel(OoOTimingModel):
    """In-order issue variant of the timing model."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._last_issue = 0

    def _choose_issue(self, ready: int) -> int:
        # Program order: never issue before an older instruction.
        if self._last_issue > ready:
            ready = self._last_issue
        issued = self._issued_in_cycle
        width = self.platform.issue_width
        issue = ready
        while issued.get(issue, 0) >= width:
            issue += 1
        issued[issue] = issued.get(issue, 0) + 1
        self._last_issue = issue
        return issue
