"""The four evaluation platforms of the paper's Table 7.

Each :class:`PlatformConfig` bundles the microarchitectural parameters
the timing models need.  Values marked "Table 7" come straight from the
paper; the remaining parameters (window size, widths, misprediction
penalty, L2/memory latencies) are filled in from the well-known
microarchitecture literature for each machine and documented inline.
Absolute cycle counts are not expected to match the paper's wall-clock
seconds — the *relative* behaviour (which platform benefits most from
the load transformation, and why) is what these configs reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyLatencies
from repro.isa.instructions import Opcode


@dataclass(frozen=True)
class PlatformConfig:
    """Parameters of one evaluation machine."""

    name: str
    clock_ghz: float
    fetch_width: int
    issue_width: int
    window: int  # reorder-buffer / in-flight instruction window
    mispredict_penalty: int  # pipeline refill cycles after a mispredict
    l1_hit_int: int  # integer load-to-use latency (Table 7)
    l1_hit_fp: int  # FP load-to-use latency (Table 7)
    l2_latency: int  # additional cycles for an L1 miss / L2 hit
    memory_latency: int  # additional cycles for an L2 miss
    l1_config: CacheConfig = field(
        default=CacheConfig(64 * 1024, 2, 64, name="L1D")
    )
    l2_config: Optional[CacheConfig] = field(
        default=CacheConfig(4 * 1024 * 1024, 1, 64, name="L2")
    )
    int_registers: int = 32
    float_registers: int = 32
    in_order: bool = False
    #: Whether the ISA has a general integer conditional move, so the
    #: compiler can if-convert store-free THEN paths.  Alpha (cmovXX),
    #: Pentium 4 (cmovcc), and Itanium (full predication) do; the
    #: PowerPC of the paper's era has no integer select the gcc 3.3
    #: baseline would emit.
    has_cmov: bool = True
    #: Full predication (Itanium): stores can be guarded by predicate
    #: registers, so if-conversion is not blocked by stores at all.
    predication: bool = False
    #: Latency of a conditional move.  1 on Alpha/Itanium; the Pentium 4
    #: implemented cmov as a slow multi-uop operation (~4 cycles
    #: dependent latency), which is part of why the paper's P4 gains
    #: are the smallest.
    cmov_latency: int = 1
    #: Extra cycles for a load that hits a recently stored address.
    #: The Pentium 4's store-to-load forwarding stalls were notoriously
    #: expensive, which taxes spill-heavy code on that machine.
    store_forward_penalty: int = 0
    #: For in-order machines: size of the static-overlap window used as
    #: a proxy for the compiler's software pipelining / global code
    #: motion (icc on Itanium).  None means strict in-order issue.
    static_overlap_window: Optional[int] = None
    #: Latency of multi-cycle ALU classes.
    mul_latency: int = 4
    div_latency: int = 20
    fp_latency: int = 4
    fp_div_latency: int = 15
    #: Whether the front end carries an LDBP-style load-driven branch
    #: predictor (arXiv:2009.09064) instead of the plain un-aliased
    #: hybrid — a what-if column beyond the paper's 2006 machines; see
    #: docs/branch-prediction.md.
    ldbp: bool = False

    def hierarchy(self) -> CacheHierarchy:
        """A fresh cache hierarchy matching this platform."""
        return CacheHierarchy(
            l1_config=self.l1_config,
            l2_config=self.l2_config,
            latencies=HierarchyLatencies(
                l1_hit=self.l1_hit_int,
                l2_penalty=self.l2_latency,
                memory_penalty=self.memory_latency,
            ),
        )

    def compiler_options(self, alias_model: str = "may-alias"):
        """Baseline -O3 compiler options for this machine (register
        budget and conditional-move availability included)."""
        from repro.lang.compiler import CompilerOptions

        return CompilerOptions(
            opt_level=3,
            alias_model=alias_model,
            enable_cmov=self.has_cmov,
            enable_store_predication=self.predication,
            int_registers=self.int_registers,
            float_registers=self.float_registers,
        )

    def op_latency(self, opcode: Opcode) -> int:
        """Execution latency of a non-memory operation."""
        if opcode in (Opcode.CMOV, Opcode.FCMOV):
            return self.cmov_latency
        if opcode is Opcode.MUL:
            return self.mul_latency
        if opcode in (Opcode.DIV, Opcode.MOD):
            return self.div_latency
        if opcode is Opcode.FDIV:
            return self.fp_div_latency
        if opcode in (
            Opcode.FADD,
            Opcode.FSUB,
            Opcode.FMUL,
            Opcode.FNEG,
            Opcode.CVTIF,
            Opcode.CVTFI,
        ):
            return self.fp_latency
        return 1


#: Alpha 21264 (Table 7: 833 MHz, 64 KB 2-way L1 with 3-cycle integer
#: hit, 4 MB direct-mapped L2).  4-wide fetch/issue, 80-entry window,
#: ~7-cycle misprediction penalty (Kessler, IEEE Micro 1999).
ALPHA_21264 = PlatformConfig(
    name="Alpha 21264",
    clock_ghz=0.833,
    fetch_width=4,
    issue_width=4,
    window=80,
    mispredict_penalty=7,
    l1_hit_int=3,
    l1_hit_fp=4,
    l2_latency=8,
    memory_latency=72,
    l1_config=CacheConfig(64 * 1024, 2, 64, name="L1D"),
    l2_config=CacheConfig(4 * 1024 * 1024, 1, 64, name="L2"),
    int_registers=32,
    float_registers=32,
)

#: PowerPC G5 / PPC970 (Table 7: 2.7 GHz, 32 KB 2-way L1 with 3-cycle
#: integer hit, 512 KB 8-way L2 at 11-12 cycles).  Deep pipeline:
#: ~13-cycle misprediction penalty; 200-instruction in-flight window.
POWERPC_G5 = PlatformConfig(
    name="PowerPC G5",
    clock_ghz=2.7,
    fetch_width=4,
    issue_width=4,
    window=200,
    mispredict_penalty=13,
    l1_hit_int=3,
    l1_hit_fp=5,
    l2_latency=12,
    memory_latency=150,
    l1_config=CacheConfig(32 * 1024, 2, 64, name="L1D"),
    l2_config=CacheConfig(512 * 1024, 8, 64, name="L2"),
    int_registers=32,
    float_registers=32,
    has_cmov=False,
)

#: Pentium 4 / Northwood (Table 7: 2.0 GHz, 8 KB 4-way L1 with 2-cycle
#: integer hit, *eight* architectural integer registers).  Famous
#: ~20-cycle misprediction penalty, 126-entry ROB, 3-uop width.
PENTIUM_4 = PlatformConfig(
    name="Pentium 4",
    clock_ghz=2.0,
    fetch_width=3,
    issue_width=3,
    window=126,
    mispredict_penalty=20,
    l1_hit_int=2,
    l1_hit_fp=6,
    l2_latency=18,
    memory_latency=200,
    l1_config=CacheConfig(8 * 1024, 4, 64, name="L1D"),
    l2_config=CacheConfig(512 * 1024, 8, 64, name="L2"),
    int_registers=8,
    float_registers=8,
    # gcc 3.3 with plain -O3 targets baseline i386, which has no CMOVcc
    # (it needs -march=i686 or later, which the paper's build flags do
    # not include) — so neither the original nor the transformed code
    # gets if-converted on this platform, and the transformation's gain
    # must come from load scheduling alone, squeezed further by eight
    # architectural registers.  This matches the paper's finding that
    # the Pentium 4 benefits least (4.3% harmonic mean).
    has_cmov=False,
    cmov_latency=4,
)

#: Itanium 2 (Table 7: 1.6 GHz, 16 KB 4-way L1 with 1-cycle integer
#: hit, 128 GPR/128 FPR).  In-order, 6-wide issue, short pipeline with
#: ~6-cycle misprediction penalty; FP loads bypass L1 (higher latency).
ITANIUM_2 = PlatformConfig(
    name="Itanium 2",
    clock_ghz=1.6,
    fetch_width=6,
    issue_width=6,
    window=48,
    mispredict_penalty=6,
    l1_hit_int=1,
    l1_hit_fp=6,
    l2_latency=5,
    memory_latency=180,
    l1_config=CacheConfig(16 * 1024, 4, 64, name="L1D"),
    l2_config=CacheConfig(256 * 1024, 8, 128, name="L2"),
    int_registers=128,
    float_registers=128,
    in_order=True,
    predication=True,
    static_overlap_window=16,
)

#: Alpha 21264 with an LDBP-style front end (arXiv:2009.09064): the
#: modern acceleration proposal the characterization points at, applied
#: to the paper's reference machine.  Every core parameter matches
#: ``ALPHA_21264`` so Table 8 / Figure 9 deltas against the ``alpha``
#: column isolate exactly the reclaimed misprediction penalty.
LDBP_ALPHA = replace(ALPHA_21264, name="Alpha 21264 + LDBP", ldbp=True)

#: All Table 7 platforms by short name, plus the LDBP what-if column.
PLATFORMS: Dict[str, PlatformConfig] = {
    "alpha": ALPHA_21264,
    "powerpc": POWERPC_G5,
    "pentium4": PENTIUM_4,
    "itanium": ITANIUM_2,
    "ldbp": LDBP_ALPHA,
}


def get_platform(name: str) -> PlatformConfig:
    """Look up a platform by short name (``alpha``, ``powerpc``,
    ``pentium4``, ``itanium``, ``ldbp``)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {sorted(PLATFORMS)}"
        ) from None


def make_timing_model(platform: PlatformConfig):
    """Instantiate the right timing model for a platform."""
    from dataclasses import replace as _replace

    from repro.cpu.inorder import InOrderTimingModel
    from repro.cpu.ooo import OoOTimingModel

    if platform.in_order:
        if platform.static_overlap_window is not None:
            # In-order machine + statically scheduling compiler: a small
            # scoreboard window stands in for icc's software pipelining
            # (cross-iteration overlap a strict in-order trace model
            # cannot see).
            proxy = _replace(platform, window=platform.static_overlap_window)
            return OoOTimingModel(proxy)
        return InOrderTimingModel(platform)
    if platform.ldbp:
        from repro.branch.predictors import LoadDrivenBranchPredictor

        return OoOTimingModel(platform, predictor=LoadDrivenBranchPredictor())
    return OoOTimingModel(platform)
