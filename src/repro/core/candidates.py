"""Profile-driven selection of load-scheduling candidates (Section 3).

The paper's procedure: "we use ATOM to detect the two load sequences
described in Section 2.2, and map the loads back to source code lines.
A profile run then determines, for each sequence, the frequency of
execution, the branch misprediction rate, the L1 miss rate, and
information about the corresponding lines of source code.  The
optimization candidates are the frequently executed loads that lead to
or follow branches with high misprediction rates."

:func:`select_candidates` implements exactly that filter over a
:class:`repro.atom.runner.CharacterizationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.atom.runner import CharacterizationResult


@dataclass
class CandidateLoad:
    """One optimization candidate with its profile (a Table 5 row)."""

    sid: int
    line: int
    array: str
    frequency: float  # fraction of all executed loads
    l1_miss_rate: float
    feed_misprediction_rate: float  # of the branches this load feeds
    follows_hard_branch: bool

    def __str__(self) -> str:
        via = []
        if self.feed_misprediction_rate > 0:
            via.append(f"feeds branch ({self.feed_misprediction_rate:.1%} misp)")
        if self.follows_hard_branch:
            via.append("follows hard branch")
        return (
            f"line {self.line:4d}  {self.array:10s} freq {self.frequency:6.2%}  "
            f"L1 miss {self.l1_miss_rate:5.2%}  [{', '.join(via) or 'frequent'}]"
        )


def select_candidates(
    result: CharacterizationResult,
    frequency_threshold: float = 0.01,
    misprediction_threshold: float = 0.05,
    limit: Optional[int] = None,
) -> List[CandidateLoad]:
    """Select loads worth scheduling at the source level.

    A load qualifies when it executes often (``frequency_threshold`` of
    all dynamic loads) and either feeds a conditional branch whose
    misprediction rate is at least ``misprediction_threshold`` or sits
    in a tight dependence chain right after such a branch.
    Returns candidates sorted by frequency, most frequent first.
    """
    total_loads = result.coverage.total_loads
    if not total_loads:
        return []
    sequences = result.sequences
    predictor = sequences.predictor

    # Static loads observed right after some hard-to-predict branch: the
    # per-branch attribution keeps dynamic counts per branch; recover
    # static loads via the pending-consumption profile is not retained,
    # so approximate with the branch->load *feed* relation inverted: a
    # load follows a hard branch when its own block was entered through
    # one.  We conservatively flag loads whose feeding information shows
    # a hard branch OR that belong to the workload's detected
    # after-branch population.
    hard_branches: Set[int] = {
        sid
        for sids in sequences.after_branch_loads
        for sid in sids
        if predictor.branch_misprediction_rate(sid) >= misprediction_threshold
    }

    by_sid = {i.sid: i for i in result.program.all_instructions() if i.is_load}
    candidates: List[CandidateLoad] = []
    for sid, count in result.coverage.sorted_counts():
        frequency = count / total_loads
        if frequency < frequency_threshold:
            break  # sorted by count: everything after is rarer
        instr = by_sid.get(sid)
        if instr is None:
            continue
        feed_rate = sequences.load_feed_misprediction_rate(sid)
        feeds_hard = feed_rate >= misprediction_threshold
        follows_hard = bool(hard_branches) and _follows_hard_branch(
            result, sid, hard_branches
        )
        if not feeds_hard and not follows_hard:
            continue
        candidates.append(
            CandidateLoad(
                sid=sid,
                line=instr.line,
                array=instr.array or "?",
                frequency=frequency,
                l1_miss_rate=result.cache.load_l1_miss_rate(sid),
                feed_misprediction_rate=feed_rate,
                follows_hard_branch=follows_hard,
            )
        )
        if limit is not None and len(candidates) >= limit:
            break
    return candidates


def _follows_hard_branch(
    result: CharacterizationResult, load_sid: int, hard_branches: Set[int]
) -> bool:
    """Static check: does some hard-to-predict branch sit within a few
    static instructions before this load in layout order?  (The dynamic
    window test already ran inside SequenceProfile; this recovers the
    static mapping for reporting.)"""
    program = result.program
    window = 8
    flat = list(program.all_instructions())
    index = next((i for i, ins in enumerate(flat) if ins.sid == load_sid), None)
    if index is None:
        return False
    lo = max(0, index - window)
    return any(
        ins.is_branch and ins.sid in hard_branches for ins in flat[lo:index]
    )


def candidate_lines(candidates: List[CandidateLoad]) -> List[int]:
    """Distinct source lines of the candidates, ascending — the lines a
    developer would edit (the paper's Table 6 'lines of C involved')."""
    return sorted({c.line for c in candidates if c.line})
