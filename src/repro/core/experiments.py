"""One entry point per paper table and figure.

Every function returns structured rows (and can render itself through
:mod:`repro.core.reporting`); the benchmark harness under
``benchmarks/`` simply calls these and prints the result next to the
paper's published numbers.  The characterization-driven functions take
a :class:`repro.api.Session`, which memoizes the single run each
workload needs, so producing all of Figure 1 / Tables 1-5 costs one
pass per program, exactly like the paper's single ATOM profile run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.atom.runner import LoadProfileRow, characterize
from repro.core import candidates as candidates_mod
from repro.core.pipeline import EvaluationResult, evaluate_workload, harmonic_mean_speedup
from repro.core.reporting import format_table, pct
from repro.cpu.platforms import PLATFORMS, PlatformConfig
from repro.workloads.registry import (
    WorkloadSpec,
    all_workloads,
    amenable_workloads,
    get_workload,
    spec_workloads,
)


if TYPE_CHECKING:  # avoid importing the API layer at module import time
    from repro.api import Session


# ---------------------------------------------------------------------------
# Figure 1 / Table 1
# ---------------------------------------------------------------------------


@dataclass
class MixRow:
    workload: str
    loads: float
    stores: float
    branches: float
    other: float
    instructions: int
    fp_fraction: float
    paper_fp_fraction: Optional[float]


def figure1_instruction_mix(context: "Session") -> List[MixRow]:
    """Figure 1 + Table 1: instruction profile of the nine programs."""
    rows = []
    for spec in all_workloads():
        result = context.run(spec.name)
        mix = result.mix
        rows.append(
            MixRow(
                workload=spec.name,
                loads=mix.load_fraction,
                stores=mix.store_fraction,
                branches=mix.branch_fraction,
                other=mix.other_fraction,
                instructions=mix.counts.total,
                fp_fraction=mix.fp_fraction,
                paper_fp_fraction=spec.paper.fp_fraction,
            )
        )
    return rows


def render_figure1(rows: List[MixRow]) -> str:
    return format_table(
        ["program", "loads", "stores", "cond br", "other"],
        [[r.workload, pct(r.loads), pct(r.stores), pct(r.branches), pct(r.other)] for r in rows],
        title="Figure 1: instruction profile",
    )


def render_table1(rows: List[MixRow]) -> str:
    return format_table(
        ["program", "instructions", "FP (measured)", "FP (paper)"],
        [
            [r.workload, r.instructions, pct(r.fp_fraction, 2), pct(r.paper_fp_fraction, 2)]
            for r in rows
        ],
        title="Table 1: executed instructions and floating-point share",
    )


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


@dataclass
class CoverageRow:
    workload: str
    suite: str  # "BioPerf" | "SPEC"
    static_loads: int
    coverage_at_80: float
    loads_for_90pct: int
    curve: List[float] = field(repr=False, default_factory=list)


def figure2_coverage(
    context: "Session",
    bioperf: Tuple[str, ...] = ("hmmsearch", "clustalw", "fasta"),
    spec_like: Tuple[str, ...] = ("gcc", "crafty", "vortex"),
) -> List[CoverageRow]:
    """Figure 2: cumulative load coverage, BioPerf vs SPEC-like."""
    rows = []
    for suite, names in (("BioPerf", bioperf), ("SPEC", spec_like)):
        for name in names:
            result = context.run(name)
            coverage = result.coverage
            rows.append(
                CoverageRow(
                    workload=name,
                    suite=suite,
                    static_loads=coverage.static_load_count,
                    coverage_at_80=coverage.coverage_at(80),
                    loads_for_90pct=coverage.loads_for_coverage(0.90),
                    curve=coverage.curve(),
                )
            )
    return rows


def render_figure2(rows: List[CoverageRow]) -> str:
    return format_table(
        ["program", "suite", "static loads", "coverage@80", "loads for 90%"],
        [
            [r.workload, r.suite, r.static_loads, pct(r.coverage_at_80), r.loads_for_90pct]
            for r in rows
        ],
        title="Figure 2: cumulative frequency of executed loads vs static loads",
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


@dataclass
class CacheRow:
    workload: str
    l1_local: float
    l2_local: float
    overall: float
    amat: float


def table2_cache(context: "Session") -> List[CacheRow]:
    """Table 2: cache performance under the Table 3 configuration."""
    rows = []
    for spec in all_workloads():
        result = context.run(spec.name)
        hierarchy = result.cache.hierarchy
        rows.append(
            CacheRow(
                workload=spec.name,
                l1_local=hierarchy.l1_local_miss_rate,
                l2_local=hierarchy.l2_local_miss_rate,
                overall=hierarchy.overall_miss_rate,
                amat=hierarchy.amat,
            )
        )
    return rows


def render_table2(rows: List[CacheRow]) -> str:
    averages = [
        "average",
        pct(sum(r.l1_local for r in rows) / len(rows), 2),
        pct(sum(r.l2_local for r in rows) / len(rows), 2),
        pct(sum(r.overall for r in rows) / len(rows), 3),
        f"{sum(r.amat for r in rows) / len(rows):.2f}",
    ]
    body = [
        [r.workload, pct(r.l1_local, 2), pct(r.l2_local, 2), pct(r.overall, 3), f"{r.amat:.2f}"]
        for r in rows
    ]
    return format_table(
        ["program", "L1 local", "L2 local", "overall", "AMAT"],
        body + [averages],
        title="Table 2: cache performance (Table 3 configuration)",
    )


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------


@dataclass
class SequenceRow:
    workload: str
    load_to_branch: float
    seq_misprediction: float
    after_hard_branch: float
    paper_load_to_branch: Optional[float]
    paper_seq_misprediction: Optional[float]
    paper_after_hard: Optional[float]


def table4_sequences(context: "Session") -> List[SequenceRow]:
    """Table 4(a)+(b): the two problematic load sequences."""
    rows = []
    for spec in all_workloads():
        summary = context.run(spec.name).sequences.summary()
        rows.append(
            SequenceRow(
                workload=spec.name,
                load_to_branch=summary.load_to_branch_fraction,
                seq_misprediction=summary.seq_branch_misprediction_rate,
                after_hard_branch=summary.after_hard_branch_fraction,
                paper_load_to_branch=spec.paper.load_to_branch,
                paper_seq_misprediction=spec.paper.seq_misprediction,
                paper_after_hard=spec.paper.after_hard_branch,
            )
        )
    return rows


def render_table4(rows: List[SequenceRow]) -> str:
    return format_table(
        [
            "program",
            "ld->br",
            "(paper)",
            "br misp",
            "(paper)",
            "after hard br",
            "(paper)",
        ],
        [
            [
                r.workload,
                pct(r.load_to_branch),
                pct(r.paper_load_to_branch),
                pct(r.seq_misprediction),
                pct(r.paper_seq_misprediction),
                pct(r.after_hard_branch),
                pct(r.paper_after_hard),
            ]
            for r in rows
        ],
        title="Table 4: load->branch sequences and loads after hard branches",
    )


# ---------------------------------------------------------------------------
# Table 4 follow-up: LDBP reclamation
# ---------------------------------------------------------------------------


@dataclass
class LdbpRow:
    """One workload's hard-to-predict population under baseline vs LDBP."""

    workload: str
    hard_branches: int
    reclaimed_branches: int
    baseline_rate: float
    ldbp_rate: float
    precompute_coverage: float
    baseline_mispredictions: int
    ldbp_mispredictions: int

    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of the hard population pulled below the threshold."""
        if not self.hard_branches:
            return 0.0
        return self.reclaimed_branches / self.hard_branches

    @property
    def misprediction_reduction(self) -> float:
        """Relative misprediction reduction on the hard population."""
        if not self.baseline_mispredictions:
            return 0.0
        return 1.0 - self.ldbp_mispredictions / self.baseline_mispredictions


def ldbp_reclamation(context: "Session") -> List[LdbpRow]:
    """Table 4 follow-up: how much of the paper's hard-to-predict
    (>= 5% misprediction) branch population an LDBP-style predictor
    reclaims per workload.

    Answered through ``Session.analyze(tools=["ldbp"])``, so a stored
    trace satisfies the query without re-simulation and the result is
    bit-identical to a live run (the trace differential matrix proves
    this per workload).

    Covers the SPEC comparison trio too: the paper's point is that
    BioPerf's hard branches sit behind loads, so the SPEC programs
    bound how much of the reclamation is BioPerf-specific.
    """
    rows = []
    for spec in all_workloads() + spec_workloads():
        payload = context.analyze(spec.name, tools=["ldbp"]).payloads["ldbp"]
        rows.append(
            LdbpRow(
                workload=spec.name,
                hard_branches=payload["hard_branches"],
                reclaimed_branches=payload["reclaimed_branches"],
                baseline_rate=payload["baseline_rate"],
                ldbp_rate=payload["ldbp_rate"],
                precompute_coverage=payload["precompute_coverage"],
                baseline_mispredictions=payload["baseline_mispredictions"],
                ldbp_mispredictions=payload["ldbp_mispredictions"],
            )
        )
    return rows


def render_ldbp(rows: List[LdbpRow]) -> str:
    return format_table(
        [
            "program",
            "hard br",
            "reclaimed",
            "fraction",
            "misp cut",
            "base misp",
            "ldbp misp",
            "coverage",
        ],
        [
            [
                r.workload,
                r.hard_branches,
                r.reclaimed_branches,
                pct(r.reclaimed_fraction),
                pct(r.misprediction_reduction),
                pct(r.baseline_rate, 2),
                pct(r.ldbp_rate, 2),
                pct(r.precompute_coverage),
            ]
            for r in rows
        ],
        title="LDBP reclamation of the hard-to-predict branch population",
    )


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------


def table5_load_profile(
    context: "Session", workload: str = "hmmsearch", top: int = 8
) -> List[LoadProfileRow]:
    """Table 5: per-load profile of the hottest loads of one program."""
    return context.run(workload).load_profile(top=top)


def render_table5(rows: List[LoadProfileRow], workload: str = "hmmsearch") -> str:
    spec = get_workload(workload)
    return format_table(
        ["load sid", "frequency", "L1 miss", "br mispredict", "line", "in function", "in file"],
        [
            [
                r.sid,
                pct(r.frequency, 2),
                pct(r.l1_miss_rate, 2),
                pct(r.branch_misprediction_rate, 2),
                r.line,
                spec.hot_function,
                spec.hot_file,
            ]
            for r in rows
        ],
        title=f"Table 5: profile of the frequently executed loads in {workload}",
    )


# ---------------------------------------------------------------------------
# Table 6
# ---------------------------------------------------------------------------


@dataclass
class TransformRow:
    workload: str
    loads_considered: int
    loc_involved: int
    paper_loads: Optional[int]
    paper_loc: Optional[int]


def table6_transforms() -> List[TransformRow]:
    """Table 6: what the source transformation touched, per program."""
    rows = []
    for spec in amenable_workloads():
        stats = spec.transform_stats()
        rows.append(
            TransformRow(
                workload=spec.name,
                loads_considered=stats["loads_considered"],
                loc_involved=stats["loc_involved"],
                paper_loads=spec.paper.loads_considered,
                paper_loc=spec.paper.loc_involved,
            )
        )
    return rows


def render_table6(rows: List[TransformRow]) -> str:
    return format_table(
        ["program", "static loads", "(paper)", "lines of C", "(paper)"],
        [
            [r.workload, r.loads_considered, r.paper_loads, r.loc_involved, r.paper_loc]
            for r in rows
        ],
        title="Table 6: static loads and source lines involved in the transformation",
    )


# ---------------------------------------------------------------------------
# Table 7 (configuration only)
# ---------------------------------------------------------------------------


def table7_platforms() -> List[PlatformConfig]:
    """Table 7: the four evaluation platforms."""
    return [PLATFORMS[key] for key in ("alpha", "powerpc", "pentium4", "itanium")]


def render_table7(platforms: List[PlatformConfig]) -> str:
    return format_table(
        ["platform", "clock GHz", "width", "window", "misp penalty", "L1 int", "L1 fp", "int regs", "in-order"],
        [
            [
                p.name,
                p.clock_ghz,
                p.issue_width,
                p.window,
                p.mispredict_penalty,
                p.l1_hit_int,
                p.l1_hit_fp,
                p.int_registers,
                "yes" if p.in_order else "no",
            ]
            for p in platforms
        ],
        title="Table 7: evaluation platforms",
    )


# ---------------------------------------------------------------------------
# Table 8 / Figure 9
# ---------------------------------------------------------------------------


@dataclass
class RuntimeRow:
    workload: str
    platform_key: str
    platform: str
    original_cycles: int
    transformed_cycles: int
    speedup: float
    paper_speedup: Optional[float]


def _cell_key(task: Tuple[str, str, str, int]) -> str:
    """Checkpoint key of one evaluation cell (workload:platform)."""
    return f"{task[0]}:{task[1]}"


def table8_runtimes(
    scale: str = "large",
    seed: int = 0,
    platform_keys: Tuple[str, ...] = (
        "alpha",
        "powerpc",
        "pentium4",
        "itanium",
        "ldbp",
    ),
    jobs: int = 1,
    runner=None,
    checkpoint: Optional[str] = None,
    strict: bool = False,
) -> List:
    """Table 8: original vs transformed cycles per amenable program and
    platform (the paper reports seconds; cycles are the simulator
    analogue — Figure 9's speedups are the comparable quantity).

    ``jobs > 1`` evaluates the (platform, workload) grid across worker
    processes; each cell is an independent deterministic simulation and
    rows come back in grid order, so the output is identical to serial.

    ``runner`` supplies a pre-configured :class:`~repro.core.parallel.
    ParallelRunner` (retry/timeout/fault policy); otherwise one is
    built from ``jobs``.  A cell that still fails after the runner's
    retries appears in the result as a :class:`~repro.core.parallel.
    FailedCell` marker (the sweep degrades instead of raising) unless
    ``strict=True``.  ``checkpoint`` names a JSONL file: completed
    cells stream into it as they settle, and a rerun with the same
    sweep parameters loads them back and runs only the missing cells.
    """
    from repro.core.parallel import FailedCell, ParallelRunner, _evaluate_task
    from repro.core.resume import SweepCheckpoint, sweep_fingerprint

    names = [spec.name for spec in amenable_workloads()]
    tasks = [(name, key, scale, seed) for key in platform_keys for name in names]
    store = SweepCheckpoint.open_for(
        checkpoint,
        sweep_fingerprint("table8", scale, seed, tuple(platform_keys), tuple(names)),
    )
    done: Dict[str, object] = store.load() if store is not None else {}
    pending = [task for task in tasks if _cell_key(task) not in done]

    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    on_result = None
    if store is not None:
        on_result = lambda index, task, value: store.record(_cell_key(task), value)
    if pending:
        mapper = runner.map if strict else runner.map_settled
        settled = mapper(_evaluate_task, pending, on_result=on_result)
        done.update(zip(map(_cell_key, pending), settled))

    rows: List = []
    for task in tasks:
        value = done[_cell_key(task)]
        if isinstance(value, FailedCell):
            rows.append(value)
            continue
        name, key, evaluation = value
        spec = get_workload(name)
        platform = PLATFORMS[key]
        paper_speedup = None
        paper_pair = spec.paper.runtimes.get(key)
        if paper_pair is not None:
            paper_speedup = paper_pair[0] / paper_pair[1] - 1.0
        rows.append(
            RuntimeRow(
                workload=spec.name,
                platform_key=key,
                platform=platform.name,
                original_cycles=evaluation.original.cycles,
                transformed_cycles=evaluation.transformed.cycles,
                speedup=evaluation.speedup,
                paper_speedup=paper_speedup,
            )
        )
    return rows


def render_table8(rows: List) -> str:
    from repro.core.parallel import FailedCell

    body = []
    failed = 0
    for r in rows:
        if isinstance(r, FailedCell):
            failed += 1
            name, key = r.task[0], r.task[1]
            body.append(
                [name, PLATFORMS[key].name, "—", "—", "FAILED", pct(None)]
            )
            continue
        body.append(
            [
                r.workload,
                r.platform,
                r.original_cycles,
                r.transformed_cycles,
                pct(r.speedup),
                pct(r.paper_speedup),
            ]
        )
    title = "Table 8: runtimes (simulated cycles), original vs load-transformed"
    if failed:
        title += f" [{failed} cell(s) FAILED — partial results]"
    return format_table(
        ["program", "platform", "orig cycles", "xform cycles", "speedup", "paper speedup"],
        body,
        title=title,
    )


@dataclass
class SpeedupSummary:
    platform_key: str
    platform: str
    harmonic_mean: float
    paper_harmonic_mean: Optional[float]
    per_workload: Dict[str, float]
    failed: int = 0  # FailedCell markers excluded from the mean


#: Figure 9 / Section 7: the paper's harmonic-mean speedups.
PAPER_HMEAN = {"alpha": 0.254, "powerpc": 0.151, "pentium4": 0.043, "itanium": 0.127}


def figure9_speedups(rows: List) -> List[SpeedupSummary]:
    """Figure 9: per-platform speedups with harmonic means.

    :class:`~repro.core.parallel.FailedCell` markers from a degraded
    Table 8 sweep are excluded from the means and surfaced as each
    summary's ``failed`` count, so a partial sweep still yields a
    figure — annotated, not silently narrowed.
    """
    from repro.core.parallel import FailedCell

    failed_by_platform: Dict[str, int] = {}
    ok_rows: List[RuntimeRow] = []
    for r in rows:
        if isinstance(r, FailedCell):
            key = r.task[1]
            failed_by_platform[key] = failed_by_platform.get(key, 0) + 1
        else:
            ok_rows.append(r)
    summaries = []
    seen = dict.fromkeys(
        [r.platform_key for r in ok_rows] + list(failed_by_platform)
    )
    for key in seen:
        platform_rows = [r for r in ok_rows if r.platform_key == key]
        platform = (
            platform_rows[0].platform if platform_rows else PLATFORMS[key].name
        )
        summaries.append(
            SpeedupSummary(
                platform_key=key,
                platform=platform,
                harmonic_mean=harmonic_mean_speedup(
                    r.speedup for r in platform_rows
                )
                if platform_rows
                else 0.0,
                paper_harmonic_mean=PAPER_HMEAN.get(key),
                per_workload={r.workload: r.speedup for r in platform_rows},
                failed=failed_by_platform.get(key, 0),
            )
        )
    return summaries


def render_figure9(summaries: List[SpeedupSummary]) -> str:
    workloads: List[str] = []
    for summary in summaries:
        for name in summary.per_workload:
            if name not in workloads:
                workloads.append(name)
    headers = ["platform"] + workloads + ["hmean", "paper hmean"]
    body = []
    failed_total = 0
    for summary in summaries:
        failed_total += summary.failed
        body.append(
            [summary.platform]
            + [
                pct(summary.per_workload[w]) if w in summary.per_workload else "FAILED"
                for w in workloads
            ]
            + [pct(summary.harmonic_mean), pct(summary.paper_harmonic_mean)]
        )
    title = "Figure 9: speedup of load-transformed code"
    if failed_total:
        title += f" [{failed_total} cell(s) FAILED — hmean over surviving cells]"
    return format_table(headers, body, title=title)
