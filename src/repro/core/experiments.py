"""One entry point per paper table and figure.

Every function returns structured rows (and can render itself through
:mod:`repro.core.reporting`); the benchmark harness under
``benchmarks/`` simply calls these and prints the result next to the
paper's published numbers.  An :class:`ExperimentContext` memoizes the
single characterization run each workload needs, so producing all of
Figure 1 / Tables 1-5 costs one pass per program, exactly like the
paper's single ATOM profile run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.atom.runner import CharacterizationResult, LoadProfileRow, characterize
from repro.core import candidates as candidates_mod
from repro.core.pipeline import EvaluationResult, evaluate_workload, harmonic_mean_speedup
from repro.core.reporting import format_table, pct
from repro.cpu.platforms import PLATFORMS, PlatformConfig
from repro.workloads.registry import (
    WorkloadSpec,
    all_workloads,
    amenable_workloads,
    get_workload,
    spec_workloads,
)


class ExperimentContext:
    """Memoizes characterization runs per (workload, scale, seed).

    Two optional accelerators compose with the in-memory memo:

    * ``cache`` — a :class:`repro.core.runcache.RunCache`; completed
      runs are persisted on disk keyed by a fingerprint of the program,
      dataset, and tool configuration, so a later process skips the
      interpretation entirely.
    * ``jobs`` — worker-process count for :meth:`prefetch`, which fans
      the uncached characterization runs out in parallel.  Each run is
      independent and collected in workload order, so results are
      bit-identical to the serial path.
    """

    def __init__(
        self,
        scale: str = "medium",
        seed: int = 0,
        jobs: int = 1,
        cache=None,
    ):
        self.scale = scale
        self.seed = seed
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self._runs: Dict[str, CharacterizationResult] = {}

    def _fingerprint(self, name: str) -> str:
        from repro.core.runcache import workload_fingerprint

        # Shared with the run cache AND run manifests (one source of
        # truth for run identity; see repro.obs.manifest.run_manifest).
        return workload_fingerprint(name, self.scale, self.seed)

    def _load_cached(self, name: str) -> Optional[CharacterizationResult]:
        if self.cache is None:
            return None
        result = self.cache.load(self._fingerprint(name))
        return result if isinstance(result, CharacterizationResult) else None

    def _store_cached(self, name: str, result: CharacterizationResult) -> None:
        if self.cache is not None:
            self.cache.store(self._fingerprint(name), result)

    def run(self, name: str) -> CharacterizationResult:
        from repro import obs

        with obs.span(
            "experiment.run", workload=name, scale=self.scale, seed=self.seed
        ) as span:
            source = "memo"
            result = self._runs.get(name)
            if result is None:
                result = self._load_cached(name)
                source = "cache" if result is not None else source
            if result is None:
                source = "interp"
                spec = get_workload(name)
                result = characterize(
                    spec.program(),
                    spec.dataset(self.scale, self.seed),
                    workload=name,
                )
                self._store_cached(name, result)
            span.set_attr(source=source)
            obs.metrics().counter(f"experiments.runs.{source}").inc()
            self._runs[name] = result
        return result

    def prefetch(self, names: Optional[List[str]] = None) -> None:
        """Materialize runs for ``names`` (default: every workload).

        Cached and memoized runs are reused; the remainder run across
        ``self.jobs`` worker processes.  After this, every ``run()``
        call for the listed names is a dictionary lookup.
        """
        from repro import obs

        if names is None:
            names = [spec.name for spec in all_workloads() + spec_workloads()]
        with obs.span("experiment.prefetch", requested=len(names)) as span:
            missing: List[str] = []
            for name in names:
                if name in self._runs:
                    continue
                cached = self._load_cached(name)
                if cached is not None:
                    self._runs[name] = cached
                else:
                    missing.append(name)
            span.set_attr(missing=len(missing), jobs=self.jobs)
            if not missing:
                return
            from repro.core.parallel import ParallelRunner

            runner = ParallelRunner(jobs=self.jobs)
            for name, result in runner.characterize_workloads(
                missing, self.scale, self.seed
            ).items():
                self._runs[name] = result
                self._store_cached(name, result)


# ---------------------------------------------------------------------------
# Figure 1 / Table 1
# ---------------------------------------------------------------------------


@dataclass
class MixRow:
    workload: str
    loads: float
    stores: float
    branches: float
    other: float
    instructions: int
    fp_fraction: float
    paper_fp_fraction: Optional[float]


def figure1_instruction_mix(context: ExperimentContext) -> List[MixRow]:
    """Figure 1 + Table 1: instruction profile of the nine programs."""
    rows = []
    for spec in all_workloads():
        result = context.run(spec.name)
        mix = result.mix
        rows.append(
            MixRow(
                workload=spec.name,
                loads=mix.load_fraction,
                stores=mix.store_fraction,
                branches=mix.branch_fraction,
                other=mix.other_fraction,
                instructions=mix.counts.total,
                fp_fraction=mix.fp_fraction,
                paper_fp_fraction=spec.paper.fp_fraction,
            )
        )
    return rows


def render_figure1(rows: List[MixRow]) -> str:
    return format_table(
        ["program", "loads", "stores", "cond br", "other"],
        [[r.workload, pct(r.loads), pct(r.stores), pct(r.branches), pct(r.other)] for r in rows],
        title="Figure 1: instruction profile",
    )


def render_table1(rows: List[MixRow]) -> str:
    return format_table(
        ["program", "instructions", "FP (measured)", "FP (paper)"],
        [
            [r.workload, r.instructions, pct(r.fp_fraction, 2), pct(r.paper_fp_fraction, 2)]
            for r in rows
        ],
        title="Table 1: executed instructions and floating-point share",
    )


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


@dataclass
class CoverageRow:
    workload: str
    suite: str  # "BioPerf" | "SPEC"
    static_loads: int
    coverage_at_80: float
    loads_for_90pct: int
    curve: List[float] = field(repr=False, default_factory=list)


def figure2_coverage(
    context: ExperimentContext,
    bioperf: Tuple[str, ...] = ("hmmsearch", "clustalw", "fasta"),
    spec_like: Tuple[str, ...] = ("gcc", "crafty", "vortex"),
) -> List[CoverageRow]:
    """Figure 2: cumulative load coverage, BioPerf vs SPEC-like."""
    rows = []
    for suite, names in (("BioPerf", bioperf), ("SPEC", spec_like)):
        for name in names:
            result = context.run(name)
            coverage = result.coverage
            rows.append(
                CoverageRow(
                    workload=name,
                    suite=suite,
                    static_loads=coverage.static_load_count,
                    coverage_at_80=coverage.coverage_at(80),
                    loads_for_90pct=coverage.loads_for_coverage(0.90),
                    curve=coverage.curve(),
                )
            )
    return rows


def render_figure2(rows: List[CoverageRow]) -> str:
    return format_table(
        ["program", "suite", "static loads", "coverage@80", "loads for 90%"],
        [
            [r.workload, r.suite, r.static_loads, pct(r.coverage_at_80), r.loads_for_90pct]
            for r in rows
        ],
        title="Figure 2: cumulative frequency of executed loads vs static loads",
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


@dataclass
class CacheRow:
    workload: str
    l1_local: float
    l2_local: float
    overall: float
    amat: float


def table2_cache(context: ExperimentContext) -> List[CacheRow]:
    """Table 2: cache performance under the Table 3 configuration."""
    rows = []
    for spec in all_workloads():
        result = context.run(spec.name)
        hierarchy = result.cache.hierarchy
        rows.append(
            CacheRow(
                workload=spec.name,
                l1_local=hierarchy.l1_local_miss_rate,
                l2_local=hierarchy.l2_local_miss_rate,
                overall=hierarchy.overall_miss_rate,
                amat=hierarchy.amat,
            )
        )
    return rows


def render_table2(rows: List[CacheRow]) -> str:
    averages = [
        "average",
        pct(sum(r.l1_local for r in rows) / len(rows), 2),
        pct(sum(r.l2_local for r in rows) / len(rows), 2),
        pct(sum(r.overall for r in rows) / len(rows), 3),
        f"{sum(r.amat for r in rows) / len(rows):.2f}",
    ]
    body = [
        [r.workload, pct(r.l1_local, 2), pct(r.l2_local, 2), pct(r.overall, 3), f"{r.amat:.2f}"]
        for r in rows
    ]
    return format_table(
        ["program", "L1 local", "L2 local", "overall", "AMAT"],
        body + [averages],
        title="Table 2: cache performance (Table 3 configuration)",
    )


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------


@dataclass
class SequenceRow:
    workload: str
    load_to_branch: float
    seq_misprediction: float
    after_hard_branch: float
    paper_load_to_branch: Optional[float]
    paper_seq_misprediction: Optional[float]
    paper_after_hard: Optional[float]


def table4_sequences(context: ExperimentContext) -> List[SequenceRow]:
    """Table 4(a)+(b): the two problematic load sequences."""
    rows = []
    for spec in all_workloads():
        summary = context.run(spec.name).sequences.summary()
        rows.append(
            SequenceRow(
                workload=spec.name,
                load_to_branch=summary.load_to_branch_fraction,
                seq_misprediction=summary.seq_branch_misprediction_rate,
                after_hard_branch=summary.after_hard_branch_fraction,
                paper_load_to_branch=spec.paper.load_to_branch,
                paper_seq_misprediction=spec.paper.seq_misprediction,
                paper_after_hard=spec.paper.after_hard_branch,
            )
        )
    return rows


def render_table4(rows: List[SequenceRow]) -> str:
    return format_table(
        [
            "program",
            "ld->br",
            "(paper)",
            "br misp",
            "(paper)",
            "after hard br",
            "(paper)",
        ],
        [
            [
                r.workload,
                pct(r.load_to_branch),
                pct(r.paper_load_to_branch),
                pct(r.seq_misprediction),
                pct(r.paper_seq_misprediction),
                pct(r.after_hard_branch),
                pct(r.paper_after_hard),
            ]
            for r in rows
        ],
        title="Table 4: load->branch sequences and loads after hard branches",
    )


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------


def table5_load_profile(
    context: ExperimentContext, workload: str = "hmmsearch", top: int = 8
) -> List[LoadProfileRow]:
    """Table 5: per-load profile of the hottest loads of one program."""
    return context.run(workload).load_profile(top=top)


def render_table5(rows: List[LoadProfileRow], workload: str = "hmmsearch") -> str:
    spec = get_workload(workload)
    return format_table(
        ["load sid", "frequency", "L1 miss", "br mispredict", "line", "in function", "in file"],
        [
            [
                r.sid,
                pct(r.frequency, 2),
                pct(r.l1_miss_rate, 2),
                pct(r.branch_misprediction_rate, 2),
                r.line,
                spec.hot_function,
                spec.hot_file,
            ]
            for r in rows
        ],
        title=f"Table 5: profile of the frequently executed loads in {workload}",
    )


# ---------------------------------------------------------------------------
# Table 6
# ---------------------------------------------------------------------------


@dataclass
class TransformRow:
    workload: str
    loads_considered: int
    loc_involved: int
    paper_loads: Optional[int]
    paper_loc: Optional[int]


def table6_transforms() -> List[TransformRow]:
    """Table 6: what the source transformation touched, per program."""
    rows = []
    for spec in amenable_workloads():
        stats = spec.transform_stats()
        rows.append(
            TransformRow(
                workload=spec.name,
                loads_considered=stats["loads_considered"],
                loc_involved=stats["loc_involved"],
                paper_loads=spec.paper.loads_considered,
                paper_loc=spec.paper.loc_involved,
            )
        )
    return rows


def render_table6(rows: List[TransformRow]) -> str:
    return format_table(
        ["program", "static loads", "(paper)", "lines of C", "(paper)"],
        [
            [r.workload, r.loads_considered, r.paper_loads, r.loc_involved, r.paper_loc]
            for r in rows
        ],
        title="Table 6: static loads and source lines involved in the transformation",
    )


# ---------------------------------------------------------------------------
# Table 7 (configuration only)
# ---------------------------------------------------------------------------


def table7_platforms() -> List[PlatformConfig]:
    """Table 7: the four evaluation platforms."""
    return [PLATFORMS[key] for key in ("alpha", "powerpc", "pentium4", "itanium")]


def render_table7(platforms: List[PlatformConfig]) -> str:
    return format_table(
        ["platform", "clock GHz", "width", "window", "misp penalty", "L1 int", "L1 fp", "int regs", "in-order"],
        [
            [
                p.name,
                p.clock_ghz,
                p.issue_width,
                p.window,
                p.mispredict_penalty,
                p.l1_hit_int,
                p.l1_hit_fp,
                p.int_registers,
                "yes" if p.in_order else "no",
            ]
            for p in platforms
        ],
        title="Table 7: evaluation platforms",
    )


# ---------------------------------------------------------------------------
# Table 8 / Figure 9
# ---------------------------------------------------------------------------


@dataclass
class RuntimeRow:
    workload: str
    platform_key: str
    platform: str
    original_cycles: int
    transformed_cycles: int
    speedup: float
    paper_speedup: Optional[float]


def table8_runtimes(
    scale: str = "large",
    seed: int = 0,
    platform_keys: Tuple[str, ...] = ("alpha", "powerpc", "pentium4", "itanium"),
    jobs: int = 1,
) -> List[RuntimeRow]:
    """Table 8: original vs transformed cycles per amenable program and
    platform (the paper reports seconds; cycles are the simulator
    analogue — Figure 9's speedups are the comparable quantity).

    ``jobs > 1`` evaluates the (platform, workload) grid across worker
    processes; each cell is an independent deterministic simulation and
    rows come back in grid order, so the output is identical to serial.
    """
    from repro.core.parallel import ParallelRunner, _evaluate_task

    tasks = [
        (spec.name, key, scale, seed)
        for key in platform_keys
        for spec in amenable_workloads()
    ]
    results = ParallelRunner(jobs=jobs).map(_evaluate_task, tasks)
    rows: List[RuntimeRow] = []
    for name, key, evaluation in results:
        spec = get_workload(name)
        platform = PLATFORMS[key]
        paper_speedup = None
        paper_pair = spec.paper.runtimes.get(key)
        if paper_pair is not None:
            paper_speedup = paper_pair[0] / paper_pair[1] - 1.0
        rows.append(
            RuntimeRow(
                workload=spec.name,
                platform_key=key,
                platform=platform.name,
                original_cycles=evaluation.original.cycles,
                transformed_cycles=evaluation.transformed.cycles,
                speedup=evaluation.speedup,
                paper_speedup=paper_speedup,
            )
        )
    return rows


def render_table8(rows: List[RuntimeRow]) -> str:
    return format_table(
        ["program", "platform", "orig cycles", "xform cycles", "speedup", "paper speedup"],
        [
            [
                r.workload,
                r.platform,
                r.original_cycles,
                r.transformed_cycles,
                pct(r.speedup),
                pct(r.paper_speedup),
            ]
            for r in rows
        ],
        title="Table 8: runtimes (simulated cycles), original vs load-transformed",
    )


@dataclass
class SpeedupSummary:
    platform_key: str
    platform: str
    harmonic_mean: float
    paper_harmonic_mean: Optional[float]
    per_workload: Dict[str, float]


#: Figure 9 / Section 7: the paper's harmonic-mean speedups.
PAPER_HMEAN = {"alpha": 0.254, "powerpc": 0.151, "pentium4": 0.043, "itanium": 0.127}


def figure9_speedups(rows: List[RuntimeRow]) -> List[SpeedupSummary]:
    """Figure 9: per-platform speedups with harmonic means."""
    summaries = []
    for key in dict.fromkeys(r.platform_key for r in rows):
        platform_rows = [r for r in rows if r.platform_key == key]
        summaries.append(
            SpeedupSummary(
                platform_key=key,
                platform=platform_rows[0].platform,
                harmonic_mean=harmonic_mean_speedup(r.speedup for r in platform_rows),
                paper_harmonic_mean=PAPER_HMEAN.get(key),
                per_workload={r.workload: r.speedup for r in platform_rows},
            )
        )
    return summaries


def render_figure9(summaries: List[SpeedupSummary]) -> str:
    workloads = list(summaries[0].per_workload) if summaries else []
    headers = ["platform"] + workloads + ["hmean", "paper hmean"]
    body = []
    for summary in summaries:
        body.append(
            [summary.platform]
            + [pct(summary.per_workload[w]) for w in workloads]
            + [pct(summary.harmonic_mean), pct(summary.paper_harmonic_mean)]
        )
    return format_table(headers, body, title="Figure 9: speedup of load-transformed code")
