"""The paper's methodology: characterize, select candidates, transform,
evaluate.

* :mod:`repro.core.candidates` — Section 3's profile-driven selection of
  the loads worth scheduling at the source level.
* :mod:`repro.core.pipeline` — the end-to-end accelerate-and-measure
  flow behind Table 8 / Figure 9.
* :mod:`repro.core.experiments` — one entry point per paper table and
  figure.
* :mod:`repro.core.reporting` — plain-text rendering of the results.
"""

from repro.core.candidates import CandidateLoad, select_candidates
from repro.core.pipeline import (
    EvaluationResult,
    evaluate_workload,
    harmonic_mean_speedup,
)

__all__ = [
    "CandidateLoad",
    "EvaluationResult",
    "evaluate_workload",
    "harmonic_mean_speedup",
    "select_candidates",
]
