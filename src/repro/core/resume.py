"""Checkpoint/resume for long experiment sweeps.

The full evaluation grid (Table 8 / Figure 9) is workloads × platforms
runs; on the paper-scale datasets that is hours of interpretation.  An
interrupted sweep — a killed job, a reboot, Ctrl-C — should resume by
running only the missing cells, not restart from zero.

:class:`SweepCheckpoint` is a deliberately simple store built for that
one job:

* **append-only JSONL** — each completed cell is one line, flushed as
  soon as the engine settles it (via the runner's ``on_result`` hook),
  so a crash loses at most the in-flight cells;
* **self-verifying lines** — every line carries a SHA-256 of its
  payload; a torn final line (the classic crash artifact) or a
  hand-mangled one is skipped on load, never trusted;
* **sweep-fingerprint scoped** — every line records a fingerprint of
  the sweep definition (kind, scale, seed, platforms, workloads);
  lines from a different sweep are ignored, so one file cannot poison
  a differently-parameterized rerun;
* **values by pickle** — cells are whole result rows (dataclasses),
  stored base64-pickled exactly like the run cache stores results.

This is a *cell* checkpoint, one layer above the :class:`~repro.core.
runcache.RunCache`: the run cache skips re-interpreting a single
(workload, scale, seed) run, while the checkpoint skips re-assembling
whole sweep cells (including evaluation rows the run cache does not
hold).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from typing import Dict, Iterable, Optional

from repro import obs

__all__ = ["SweepCheckpoint", "sweep_fingerprint"]


def sweep_fingerprint(kind: str, *parts: object) -> str:
    """Stable identity of a sweep definition.

    Everything that changes which cells a sweep contains (its kind,
    scale, seed, platform keys, workload names) must be fed in, so a
    checkpoint written for one sweep can never satisfy another.
    """
    hasher = hashlib.sha256()
    hasher.update(kind.encode())
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(repr(part).encode())
    return hasher.hexdigest()


class SweepCheckpoint:
    """Append-only JSONL store of completed sweep cells."""

    def __init__(self, path: str, fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint

    # -- encoding ------------------------------------------------------------
    @staticmethod
    def _encode(value: object) -> Dict[str, str]:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return {
            "data": base64.b64encode(payload).decode("ascii"),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }

    @staticmethod
    def _decode(entry: Dict[str, str]) -> object:
        payload = base64.b64decode(entry["data"].encode("ascii"))
        if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
            raise ValueError("checkpoint payload digest mismatch")
        return pickle.loads(payload)

    # -- load / record -------------------------------------------------------
    def load(self) -> Dict[str, object]:
        """Completed cells as ``{key: value}``.

        Later lines win (a cell re-recorded after a resume supersedes
        the earlier copy).  Unparseable, truncated, digest-mismatched,
        or foreign-fingerprint lines are skipped and counted under the
        ``checkpoint.skipped`` metric — a crash mid-write must never
        block the resume it exists to enable.
        """
        cells: Dict[str, object] = {}
        skipped = 0
        try:
            handle = open(self.path, encoding="utf-8")
        except OSError:
            return cells
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if entry.get("sweep") != self.fingerprint:
                        raise ValueError("foreign sweep fingerprint")
                    cells[str(entry["key"])] = self._decode(entry)
                except Exception:
                    skipped += 1
        if skipped:
            obs.metrics().counter("checkpoint.skipped").inc(skipped)
        if cells:
            obs.metrics().counter("checkpoint.resumed_cells").inc(len(cells))
        return cells

    def record(self, key: str, value: object) -> None:
        """Append one completed cell, flushed to disk immediately."""
        entry = {"key": key, "sweep": self.fingerprint}
        entry.update(self._encode(value))
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        obs.metrics().counter("checkpoint.recorded").inc()

    def keys(self) -> Iterable[str]:
        """Keys of the completed cells currently on disk."""
        return self.load().keys()

    @classmethod
    def open_for(
        cls, path: Optional[str], fingerprint: str
    ) -> Optional["SweepCheckpoint"]:
        """A checkpoint at ``path``, or None when checkpointing is off."""
        if not path:
            return None
        return cls(path, fingerprint)
