"""Deterministic fault injection for testing the execution engine.

Production-scale sweeps treat partial failure as the normal case: a
worker crashes, a run hangs, a result arrives corrupted.  The engine in
:mod:`repro.core.parallel` is built to survive all three, and this
module provides the *controlled* failures used to prove that — the
chaos-testing analogue of the paper's methodology of measuring the
system rather than trusting it.

Faults are keyed by a **seeded RNG over the task identity**, not wall
clock or process state, so an injected failure reproduces exactly:

* the decision for (kind, task, attempt) is a pure function of the
  :class:`FaultConfig` seed and the task's description string;
* a task that draws an injection fails on attempts ``1..times`` and
  then runs clean, so ``retries >= times`` deterministically masks
  every injected failure — the property the fault-matrix tests assert.

Three fault kinds are supported:

* ``crash`` — raise :class:`InjectedCrash` inside the task body (the
  worker survives; the task fails like any user exception);
* ``hang`` — in a worker process, sleep ``hang_seconds`` so the
  engine's wall-clock timeout / heartbeat monitor must kill the worker;
  serially (no process boundary to preempt) it degrades to an
  immediate :class:`InjectedHang`;
* ``corrupt`` — flip bytes of the task's result payload *after* its
  checksum was computed, so the engine's integrity check must catch it.

A fourth kind, ``replica_kill``, targets a different layer: the shard
router in :mod:`repro.serve.cluster` rolls it per (replica, health
tick) and SIGKILLs the afflicted replica subprocess, proving that the
ring remaps the dead replica's hash range to survivors and no request
is permanently lost.  The engine's injection sites ignore it (its rate
is looked up by kind name, and no engine site asks for
``replica_kill``).

Every injection bumps the ``faults.injected`` counter (and a per-kind
``faults.injected.<kind>``) in the :mod:`repro.obs` metrics registry.

Configuration comes from :func:`FaultConfig.from_spec` (the CLI's
``--faults crash=0.2,seed=7``) or the ``REPRO_FAULTS`` environment
variable, and is installed process-globally with :func:`install` /
the :func:`injected` context manager.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro import obs

__all__ = [
    "FaultConfig",
    "InjectedCorruption",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "active",
    "config_from_env",
    "injected",
    "install",
    "maybe_corrupt",
    "maybe_corrupt_inline",
    "maybe_crash_or_hang",
    "resolve",
    "uninstall",
]


class InjectedFault(RuntimeError):
    """Base class of all injected failures (never raised by real code)."""


class InjectedCrash(InjectedFault):
    """A worker-crash fault fired inside a task body."""


class InjectedHang(InjectedFault):
    """A hang fault running serially, degraded to a synchronous error."""


class InjectedCorruption(InjectedFault):
    """A corrupt-result fault running serially (no transport to corrupt)."""


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and determinism knobs for injected faults.

    ``crash``/``hang``/``corrupt`` are per-task probabilities in
    [0, 1]; ``replica_kill`` is the per-(replica, health-tick)
    probability the cluster router kills a replica subprocess (engine
    sites never roll it).  ``seed`` keys the injection RNG; the same
    seed and task
    always fail the same way.  ``times`` is how many leading attempts
    of an afflicted task fail before it runs clean (so ``retries >=
    times`` masks everything).  ``hang_seconds`` is how long a hang
    fault sleeps in a worker before giving up on its own.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    replica_kill: float = 0.0
    seed: int = 0
    times: int = 1
    hang_seconds: float = 30.0

    @property
    def any_enabled(self) -> bool:
        return (
            self.crash > 0.0
            or self.hang > 0.0
            or self.corrupt > 0.0
            or self.replica_kill > 0.0
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultConfig":
        """Parse ``"crash=0.2,hang=0.1,corrupt=0.05,seed=7,times=2"``.

        Unknown keys raise ``ValueError`` so typos never silently turn
        chaos off.  An empty spec is a no-fault config.
        """
        config = cls()
        for part in spec.replace(";", ",").split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault spec item {part!r} (want key=value)")
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key in ("crash", "hang", "corrupt", "replica_kill",
                       "hang_seconds"):
                config = replace(config, **{key: float(raw)})
            elif key in ("seed", "times"):
                config = replace(config, **{key: int(raw)})
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return config

    # -- deterministic decisions -------------------------------------------
    def _roll(self, kind: str, key: str) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, kind, key)."""
        digest = hashlib.sha256(
            f"{self.seed}\x00{kind}\x00{key}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should_inject(self, kind: str, key: str, attempt: int = 1) -> bool:
        """Whether fault ``kind`` fires for task ``key`` on ``attempt``."""
        rate = getattr(self, kind, 0.0)
        if rate <= 0.0 or attempt > self.times:
            return False
        return self._roll(kind, key) < rate


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------

_active: Optional[FaultConfig] = None


def install(config: Optional[FaultConfig]) -> None:
    """Install ``config`` process-wide (None turns injection off)."""
    global _active
    _active = config if config is not None and config.any_enabled else None


def uninstall() -> None:
    """Turn fault injection off in this process."""
    install(None)


def active() -> Optional[FaultConfig]:
    """The currently installed config, or None."""
    return _active


def config_from_env() -> Optional[FaultConfig]:
    """A :class:`FaultConfig` from ``$REPRO_FAULTS``, or None when unset."""
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec or spec.lower() in ("0", "false", "no", "off"):
        return None
    config = FaultConfig.from_spec(spec)
    return config if config.any_enabled else None


def resolve(explicit: Optional[FaultConfig] = None) -> Optional[FaultConfig]:
    """The fault config the engine should use.

    Precedence: an explicit config wins, then the installed one, then
    ``$REPRO_FAULTS``.  Returns None when no faults are enabled.
    """
    for candidate in (explicit, _active, config_from_env()):
        if candidate is not None and candidate.any_enabled:
            return candidate
    return None


class injected:
    """Context manager: install a config, restore the old one on exit."""

    def __init__(self, config: Optional[FaultConfig]):
        self.config = config
        self._previous: Optional[FaultConfig] = None

    def __enter__(self) -> Optional[FaultConfig]:
        self._previous = _active
        install(self.config)
        return self.config

    def __exit__(self, *_exc) -> bool:
        install(self._previous)
        return False


# ---------------------------------------------------------------------------
# Injection sites
# ---------------------------------------------------------------------------


def _record(kind: str) -> None:
    registry = obs.metrics()
    registry.counter("faults.injected").inc()
    registry.counter(f"faults.injected.{kind}").inc()


def maybe_crash_or_hang(
    config: Optional[FaultConfig],
    key: str,
    attempt: int,
    in_worker: bool,
    on_hang=None,
) -> None:
    """The crash/hang injection site, called at the top of a task body.

    ``in_worker`` distinguishes a real worker process (hangs sleep and
    must be killed by the engine's timeout) from in-parent execution
    (hangs degrade to an immediate :class:`InjectedHang`, since there
    is no process boundary to preempt).  ``on_hang`` is called just
    before a worker-side hang starts sleeping — the engine uses it to
    freeze the worker's heartbeat so a hang looks like a truly stuck
    process, not a slow-but-alive one.
    """
    if config is None:
        return
    if config.should_inject("crash", key, attempt):
        _record("crash")
        raise InjectedCrash(f"injected crash: {key} (attempt {attempt})")
    if config.should_inject("hang", key, attempt):
        _record("hang")
        if in_worker:
            if on_hang is not None:
                on_hang()
            time.sleep(config.hang_seconds)
        raise InjectedHang(f"injected hang: {key} (attempt {attempt})")


def maybe_corrupt_inline(
    config: Optional[FaultConfig], key: str, attempt: int
) -> None:
    """Serial-path corrupt site: raise instead of corrupting bytes.

    In-parent execution has no result transport whose bytes could be
    flipped, so a corrupt fault degrades to a synchronous
    :class:`InjectedCorruption` — same retry semantics, same counters.
    """
    if config is None or not config.should_inject("corrupt", key, attempt):
        return
    _record("corrupt")
    raise InjectedCorruption(f"injected result corruption: {key} (attempt {attempt})")


def maybe_corrupt(
    config: Optional[FaultConfig],
    key: str,
    attempt: int,
    payload: bytes,
) -> bytes:
    """The corrupt-result injection site.

    Called *after* the result payload's checksum has been computed;
    flipping bytes here models corruption in transit or at rest, which
    the engine's integrity check must then catch and retry.
    """
    if config is None or not config.should_inject("corrupt", key, attempt):
        return payload
    _record("corrupt")
    if not payload:
        return b"\xff"
    # Flip the first byte — enough to break the checksum, deterministic.
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
