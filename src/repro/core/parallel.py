"""Fault-tolerant process-parallel execution engine.

The characterization and evaluation workload is embarrassingly
parallel: each (program, dataset, seed) run is independent and
deterministic, exactly like the paper running ATOM over each BioPerf
binary separately.  :class:`ParallelRunner` fans such runs out over its
own supervised worker pool while keeping results **bit-identical** to
the serial path:

* results are collected by task index and returned in input order, so
  aggregation never depends on worker scheduling;
* every worker entry point is a module-level function taking one
  picklable task tuple and resolving workload specs *by name* in the
  worker (programs are recompiled there — compilation is deterministic);
* each run's tools are returned whole and, where combination is needed
  (multi-seed aggregation), folded with the tools' ``merge`` protocol
  in a fixed order.

``jobs <= 1`` (or a single task) short-circuits to a plain serial loop
in the calling process — no pool, no pickling — and an empty task list
returns ``[]`` without touching a pool at all, so the parallel API is
safe to use unconditionally.

Fault tolerance (see ``docs/robustness.md``):

* **timeouts + heartbeats** — each dispatched task has a wall-clock
  deadline (``timeout=``) and each worker sends heartbeats from a side
  thread; a task past its deadline, a worker whose heartbeat stalls,
  or a worker process that dies outright is killed/collected, a
  replacement worker is spawned, and the task is retried
  (``parallel.timeouts`` / ``parallel.heartbeat_lost`` /
  ``parallel.worker_deaths`` counters);
* **retry with exponential backoff + jitter** — a failed task is
  re-dispatched up to ``retries`` times with delays from a
  :class:`BackoffPolicy` (deterministic jitter, ``parallel.retries``
  counter, ``parallel.backoff_ms`` histogram, a ``parallel.retry``
  span per attempt); in serial mode the failure chains the original
  exception as ``__cause__``;
* **result integrity** — pooled results travel as a checksummed pickle
  envelope; a corrupted payload is detected in the parent
  (``parallel.corrupt_results``) and retried like any failure;
* **graceful degradation** — :meth:`ParallelRunner.map_settled`
  returns a :class:`FailedCell` marker per terminally-failed task
  instead of raising, so sweeps produce partial results;
* **fault injection** — when a :class:`repro.core.faults.FaultConfig`
  is active (``--faults`` / ``$REPRO_FAULTS``), workers deterministically
  crash, hang, or corrupt results so all of the above is testable.

When telemetry is on, each worker captures its own spans and metric
deltas and ships them back with its result; the parent re-roots the
spans under the dispatching ``parallel.map`` span and folds the
metrics into its registry, so one trace shows the whole fan-out.
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import os
import pickle
import threading
import time
import traceback as _traceback
from dataclasses import dataclass
from multiprocessing import connection as _mpconn
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.atom.runner import CharacterizationResult, characterize
from repro.core import faults as _faults
from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS
from repro.obs import context as _obs_context
from repro.obs import flightrec as _flightrec
from repro.obs import tracing as _tracing
from repro.obs.metrics import begin_worker_capture as _begin_metrics_capture
from repro.obs.metrics import end_worker_capture as _end_metrics_capture
from repro.workloads.registry import get_workload

__all__ = [
    "BackoffPolicy",
    "FailedCell",
    "ParallelRunner",
    "WorkerTaskError",
    "default_jobs",
]

#: How often a worker's side thread sends a heartbeat.
HEARTBEAT_INTERVAL = 0.25


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


class WorkerTaskError(RuntimeError):
    """A parallel task failed; carries what was running, not just where.

    Attributes:
        task: the task tuple handed to the worker.
        description: human identity of the task (workload, seed, ...).
        exc_type: the original exception's class name.
        exc_message: the original exception's message.
        worker_traceback: the worker-side traceback text.
        attempts: how many times the task was tried in total.

    When the failure happened in-parent (serial execution), the
    original exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        description: str,
        task: Any,
        exc_type: str,
        exc_message: str,
        worker_traceback: str,
        attempts: int,
    ):
        self.description = description
        self.task = task
        self.exc_type = exc_type
        self.exc_message = exc_message
        self.worker_traceback = worker_traceback
        self.attempts = attempts
        super().__init__(
            f"worker task failed after {attempts} attempt(s): {description}: "
            f"{exc_type}: {exc_message}"
        )


@dataclass
class FailedCell:
    """Explicit marker for a task that failed after every retry.

    :meth:`ParallelRunner.map_settled` (and the sweeps built on it)
    puts one of these in the result list instead of raising, so a
    single bad cell degrades one table entry, not the whole sweep.
    """

    description: str
    task: Any
    error: str  # "ExcType: message"
    attempts: int

    @property
    def failed(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"FAILED[{self.description}: {self.error} ({self.attempts} attempts)]"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter for task retries.

    Delay for retry ``attempt`` (1-based count of *completed* failed
    attempts) is ``min(cap, base * factor**(attempt-1))`` stretched by
    up to ``jitter`` fraction; the jitter draw is a pure function of
    (seed, task key, attempt) so a rerun backs off identically.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def delay(self, attempt: int, key: str) -> float:
        raw = min(self.cap, self.base * self.factor ** max(0, attempt - 1))
        if self.jitter <= 0.0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}\x00{key}\x00{attempt}".encode()
        ).digest()
        roll = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (1.0 + self.jitter * roll)


# ---------------------------------------------------------------------------
# Worker entry points (module-level: must be picklable under spawn too)
# ---------------------------------------------------------------------------


def _characterize_task(
    task: Tuple,
) -> Tuple[str, CharacterizationResult]:
    """Worker: one full characterization run, resolved by workload name.

    ``task`` is ``(name, scale, seed, max_instructions)`` with an
    optional fifth ``backend`` element (older 4-tuples keep working and
    use the ambient backend).  The workload fingerprint is passed as the
    compiled backend's code key so a persistent worker pays codegen once
    per workload, not once per task.
    """
    name, scale, seed, max_instructions = task[:4]
    backend = task[4] if len(task) > 4 else None
    from repro.core.runcache import workload_fingerprint

    spec = get_workload(name)
    result = characterize(
        spec.program(),
        spec.dataset(scale, seed),
        max_instructions=max_instructions,
        workload=name,
        backend=backend,
        code_key=workload_fingerprint(name, scale, seed, max_instructions),
    )
    return name, result


def _characterize_batch_task(
    task: Tuple[str, str, Tuple[int, ...], int],
) -> Tuple[str, List[Tuple[int, bool, Any]]]:
    """Worker: one lockstep batch — one workload and scale, many seeds.

    ``task`` is ``(name, scale, seeds_tuple, max_instructions)``.  The
    whole batch runs through :func:`repro.atom.runner.
    characterize_batch` (the batched execution backend), and the result
    settles per lane: ``(name, [(seed, ok, payload), ...])`` where a
    successful lane's payload is its ``CharacterizationResult`` and a
    failed lane's is an ``"ExcType: message"`` string — so one faulting
    seed degrades one lane, never its batchmates.
    """
    name, scale, seeds, max_instructions = task
    from repro.atom.runner import characterize_batch
    from repro.core.runcache import workload_fingerprint

    spec = get_workload(name)
    program = spec.program()
    bindings = [spec.dataset(scale, seed) for seed in seeds]
    outcomes = characterize_batch(
        program,
        bindings,
        max_instructions=max_instructions,
        workload=name,
        code_key=workload_fingerprint(name, scale, seeds[0], max_instructions),
    )
    settled: List[Tuple[int, bool, Any]] = []
    for seed, outcome in zip(seeds, outcomes):
        if isinstance(outcome, CharacterizationResult):
            settled.append((seed, True, outcome))
        else:
            settled.append(
                (seed, False, f"{type(outcome).__name__}: {outcome}")
            )
    return name, settled


def _evaluate_task(task: Tuple[str, str, str, int]):
    """Worker: one original-vs-transformed evaluation on one platform."""
    name, platform_key, scale, seed = task
    from repro.core.pipeline import evaluate_workload
    from repro.cpu.platforms import PLATFORMS

    spec = get_workload(name)
    evaluation = evaluate_workload(
        spec, PLATFORMS[platform_key], scale=scale, seed=seed
    )
    return name, platform_key, evaluation


def describe_task(func: Callable, task: Any) -> str:
    """Human identity of one task tuple, by worker entry point."""
    try:
        if func is _characterize_task:
            name, scale, seed = task[:3]
            return f"characterize workload={name} scale={scale} seed={seed}"
        if func is _characterize_batch_task:
            name, scale, seeds = task[:3]
            return (
                f"characterize-batch workload={name} scale={scale} "
                f"seeds={list(seeds)}"
            )
        if func is _evaluate_task:
            name, platform_key, scale, seed = task
            return (
                f"evaluate workload={name} platform={platform_key} "
                f"scale={scale} seed={seed}"
            )
    except (TypeError, ValueError):
        pass
    return f"{getattr(func, '__name__', func)}({task!r})"


# ---------------------------------------------------------------------------
# Supervised worker pool
# ---------------------------------------------------------------------------

#: Set while a worker runs an injected hang, so its heartbeat thread
#: goes silent and the fault looks like a truly frozen process.
_hb_suspended = threading.Event()


def _invoke_pooled(
    func: Callable,
    task: Any,
    attempt: int,
    capture: bool,
    fault_config,
    ctx: Optional[dict] = None,
) -> Tuple[str, Any, list, dict]:
    """Run one task inside a worker.

    Returns ``(status, value, span_records, metrics_snapshot)`` where
    ``status`` is ``"ok"`` (value = checksummed pickle envelope
    ``(payload, sha256hex)``) or ``"error"`` (value = ``(exc_type,
    exc_message, traceback_text)``).  Exceptions never escape: a raw
    exception crossing the process boundary loses the task identity
    and, when unpicklable, kills the worker.

    ``ctx`` is the dispatching thread's ambient trace-context attrs
    (request IDs from the serving path), re-installed around the task
    body so worker-side spans — adopted back by the parent — carry the
    originating request identity.
    """
    key = describe_task(func, task)
    if capture:
        _tracing.begin_worker_capture()
        _begin_metrics_capture()
    try:
        with _obs_context.use(ctx), obs.span(
            "parallel.task", task=key, worker_pid=os.getpid(), attempt=attempt
        ):
            _faults.maybe_crash_or_hang(
                fault_config, key, attempt, in_worker=True,
                on_hang=_hb_suspended.set,
            )
            result = func(task)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        payload = _faults.maybe_corrupt(fault_config, key, attempt, payload)
        status, value = "ok", (payload, digest)
    except Exception as exc:  # noqa: BLE001 - forwarded with full context
        status = "error"
        value = (type(exc).__name__, str(exc), _traceback.format_exc())
    if capture:
        snapshot = _end_metrics_capture()
        records = _tracing.end_worker_capture()
    else:
        records, snapshot = [], {}
    return status, value, records, snapshot


def _worker_main(conn, capture: bool, fault_config) -> None:
    """Worker process loop: recv task, run it, send outcome, heartbeat."""
    _faults.install(fault_config)
    send_lock = threading.Lock()
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(HEARTBEAT_INTERVAL):
            if _hb_suspended.is_set():
                continue
            try:
                with send_lock:
                    conn.send(("beat",))
            except OSError:
                return

    threading.Thread(target=_beat, daemon=True).start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            index, func, task, attempt = message[:4]
            ctx = message[4] if len(message) > 4 else None
            outcome = _invoke_pooled(
                func, task, attempt, capture, fault_config, ctx
            )
            _hb_suspended.clear()
            try:
                with send_lock:
                    conn.send(("done", index, outcome))
            except OSError:
                break
    finally:
        stop.set()
        conn.close()


class _Worker:
    """One supervised worker process and its duplex channel."""

    def __init__(self, context, capture: bool, fault_config):
        self.capture = capture
        self.fault_config = fault_config
        self.conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, capture, fault_config),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.index: Optional[int] = None  # task index in flight
        self.attempt = 0
        self.dispatched_at = 0.0
        self.last_beat = time.monotonic()

    @property
    def busy(self) -> bool:
        return self.index is not None

    def dispatch(
        self,
        index: int,
        func: Callable,
        task: Any,
        attempt: int,
        ctx: Optional[dict] = None,
    ) -> None:
        self.index = index
        self.attempt = attempt
        self.dispatched_at = self.last_beat = time.monotonic()
        self.conn.send((index, func, task, attempt, ctx))

    def destroy(self, graceful: bool = False) -> None:
        """Tear the worker down; ``graceful`` tries a sentinel first."""
        try:
            if graceful and not self.busy and self.process.is_alive():
                self.conn.send(None)
                self.process.join(timeout=1.0)
        except (OSError, ValueError):
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass


class ParallelRunner:
    """Maps deterministic tasks over supervised workers (or serially).

    ``retries``/``timeout`` default from ``$REPRO_RETRIES`` /
    ``$REPRO_TIMEOUT`` when not given, so harnesses can turn resilience
    on without threading arguments everywhere.  ``faults`` pins a
    :class:`repro.core.faults.FaultConfig` for injection (default: the
    installed/env config, usually none).

    With ``keep_alive=True`` the worker pool survives across
    :meth:`map` calls instead of being torn down after each one: a
    long-lived process (the ``repro serve`` batching server) pays
    process spawn and per-workload codegen once, and every later batch
    lands on warm workers.  Call :meth:`close` (or use the runner as a
    context manager) to release the workers; a worker that is mid-task
    when a map is abandoned is destroyed rather than reused, so a
    stale result can never be attributed to a later batch.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        retries: Optional[int] = None,
        timeout: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
        heartbeat_timeout: Optional[float] = 30.0,
        faults: Optional[_faults.FaultConfig] = None,
        keep_alive: bool = False,
    ):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if retries is None:
            env_retries = _env_float("REPRO_RETRIES")
            retries = int(env_retries) if env_retries is not None else 0
        self.retries = max(0, int(retries))
        self.timeout = _env_float("REPRO_TIMEOUT") if timeout is None else timeout
        self.backoff = backoff or BackoffPolicy()
        self.heartbeat_timeout = heartbeat_timeout
        self.faults = faults
        self.keep_alive = keep_alive
        self._pool: List[_Worker] = []

    # -- public API ---------------------------------------------------------
    def map(
        self,
        func: Callable,
        tasks: Sequence,
        on_result: Optional[Callable[[int, Any, Any], None]] = None,
        contexts: Optional[Sequence[Optional[dict]]] = None,
    ) -> List:
        """Apply ``func`` to each task, preserving task order.

        Uses worker processes only when they can help (``jobs > 1`` and
        more than one task); otherwise runs in-process.  ``func`` must
        be a module-level function and each task picklable.  A task
        that still fails after ``retries`` re-runs surfaces as
        :class:`WorkerTaskError` with the task identity attached.
        ``on_result(index, task, value)`` is called as each task
        settles successfully (checkpointing hook).  ``contexts`` is an
        optional per-task list of trace-context attr dicts (request
        IDs from the serving path) installed around each task body —
        in the worker process for pooled runs — so the spans a task
        produces are tagged with the request(s) that caused it.
        """
        return self._execute(
            func, tasks, strict=True, on_result=on_result, contexts=contexts
        )

    def map_settled(
        self,
        func: Callable,
        tasks: Sequence,
        on_result: Optional[Callable[[int, Any, Any], None]] = None,
        contexts: Optional[Sequence[Optional[dict]]] = None,
    ) -> List:
        """Like :meth:`map`, but degrade gracefully: terminal failures
        come back as :class:`FailedCell` markers in the result list
        instead of raising, so one bad cell cannot take down a sweep."""
        return self._execute(
            func, tasks, strict=False, on_result=on_result, contexts=contexts
        )

    def run_one(self, func: Callable, task: Any):
        """One task through the full engine (retries, faults, telemetry)."""
        return self.map(func, [task])[0]

    def close(self) -> None:
        """Release any keep-alive workers (idempotent)."""
        for worker in list(self._pool):
            worker.destroy(graceful=not worker.busy)
        self._pool.clear()

    def liveness(self) -> List[Dict[str, Any]]:
        """Health of the keep-alive pool, one entry per worker.

        Each entry reports the worker's pid, whether the process is
        alive, whether a task is in flight, and the age of its last
        heartbeat — the signals ``/healthz`` exposes so a replica
        health-checker can see a wedged pool before requests time out.
        Empty when no keep-alive pool is warm (workers are per-map).
        """
        now = time.monotonic()
        return [
            {
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "busy": worker.busy,
                "heartbeat_age_s": round(now - worker.last_beat, 3),
            }
            for worker in self._pool
        ]

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    # -- execution ----------------------------------------------------------
    def _execute(self, func, tasks, strict: bool, on_result, contexts=None) -> List:
        tasks = list(tasks)
        if not tasks:
            # Short-circuit: no span, no pool, no counters.
            return []
        if contexts is not None:
            contexts = list(contexts)
            if len(contexts) != len(tasks):
                raise ValueError(
                    f"contexts length {len(contexts)} != tasks length "
                    f"{len(tasks)}"
                )
        fault_config = _faults.resolve(self.faults)
        workers = min(self.jobs, len(tasks))
        with obs.span(
            "parallel.map",
            func=getattr(func, "__name__", str(func)),
            tasks=len(tasks),
            workers=max(workers, 1),
        ):
            obs.metrics().gauge("parallel.workers").set(max(workers, 1))
            obs.metrics().counter("parallel.tasks").inc(len(tasks))
            if self.jobs <= 1 or len(tasks) <= 1:
                return self._run_serial(
                    func, tasks, fault_config, strict, on_result, contexts
                )
            return self._run_pooled(
                func, tasks, workers, fault_config, strict, on_result, contexts
            )

    # -- serial path ---------------------------------------------------------
    def _try_inline(self, func, task, key, attempt, fault_config):
        """One in-process attempt; returns (value, error-or-None)."""
        try:
            with obs.span(
                "parallel.task", task=key, worker_pid=os.getpid(), attempt=attempt
            ):
                _faults.maybe_crash_or_hang(
                    fault_config, key, attempt, in_worker=False
                )
                value = func(task)
                _faults.maybe_corrupt_inline(fault_config, key, attempt)
            return value, None
        except Exception as exc:  # noqa: BLE001 - retried or surfaced with context
            return None, (type(exc).__name__, str(exc), _traceback.format_exc(), exc)

    def _run_serial(
        self, func, tasks, fault_config, strict, on_result, contexts=None
    ) -> List:
        results: List[Any] = []
        for index, task in enumerate(tasks):
            key = describe_task(func, task)
            ctx = contexts[index] if contexts is not None else None
            with _obs_context.use(ctx):
                value, error = self._try_inline(func, task, key, 1, fault_config)
                attempts = 1
                while error is not None and attempts <= self.retries:
                    delay = self.backoff.delay(attempts, key)
                    obs.metrics().counter("parallel.retries").inc()
                    obs.metrics().histogram("parallel.backoff_ms").observe(
                        delay * 1e3
                    )
                    time.sleep(delay)
                    with obs.span(
                        "parallel.retry",
                        task=key,
                        attempt=attempts + 1,
                        previous_error=f"{error[0]}: {error[1]}",
                        backoff_ms=round(delay * 1e3, 2),
                    ):
                        value, error = self._try_inline(
                            func, task, key, attempts + 1, fault_config
                        )
                    attempts += 1
            if error is not None:
                exc_type, exc_message, tb_text, exc = error
                obs.metrics().counter("parallel.failures").inc()
                _flightrec.note(
                    "task_failed",
                    task=key,
                    error=f"{exc_type}: {exc_message}",
                    attempts=attempts,
                    **(ctx or {}),
                )
                if strict:
                    raise WorkerTaskError(
                        key, task, exc_type, exc_message, tb_text, attempts
                    ) from exc
                results.append(
                    FailedCell(key, task, f"{exc_type}: {exc_message}", attempts)
                )
                continue
            if on_result is not None:
                on_result(index, task, value)
            results.append(value)
        return results

    # -- pooled path ----------------------------------------------------------
    def _run_pooled(
        self, func, tasks, workers, fault_config, strict, on_result, contexts=None
    ):
        capture = obs.enabled()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")

        n = len(tasks)
        unset = object()
        results: List[Any] = [unset] * n
        failures: Dict[int, Tuple[Tuple[str, str, str], int]] = {}
        ready: List[Tuple[int, int]] = [(i, 1) for i in range(n)]
        ready.reverse()  # pop() from the end yields index order
        delayed: List[Tuple[float, int, int]] = []  # (ready_time, index, attempt)
        settled = 0
        pool = self._pool

        # Reuse surviving keep-alive workers: prune the dead or busy
        # (a busy worker means a previous map was abandoned mid-task —
        # its eventual result must not leak into this batch), drain
        # heartbeats queued while the pool sat idle, and respawn when
        # the telemetry capture mode changed (it is baked into each
        # worker at spawn).
        for worker in list(pool):
            stale = (
                worker.busy
                or worker.capture != capture
                or worker.fault_config != fault_config
                or not worker.process.is_alive()
            )
            if not stale:
                try:
                    while worker.conn.poll():
                        worker.conn.recv()
                except (EOFError, OSError):
                    stale = True
            if stale:
                worker.destroy()
                pool.remove(worker)

        def spawn() -> _Worker:
            worker = _Worker(context, capture, fault_config)
            pool.append(worker)
            return worker

        def settle_ok(index: int, attempt: int, value) -> None:
            nonlocal settled
            results[index] = value
            settled += 1
            if on_result is not None:
                on_result(index, tasks[index], value)

        def settle_failure(index: int, attempt: int, error) -> None:
            """Retry with backoff, or record a terminal failure."""
            nonlocal settled
            key = describe_task(func, tasks[index])
            if attempt <= self.retries:
                delay = self.backoff.delay(attempt, key)
                obs.metrics().counter("parallel.retries").inc()
                obs.metrics().histogram("parallel.backoff_ms").observe(delay * 1e3)
                with obs.span(
                    "parallel.retry",
                    task=key,
                    attempt=attempt + 1,
                    previous_error=f"{error[0]}: {error[1]}",
                    backoff_ms=round(delay * 1e3, 2),
                ):
                    pass  # marks the retry decision; re-run happens on a worker
                heapq.heappush(
                    delayed, (time.monotonic() + delay, index, attempt + 1)
                )
                return
            obs.metrics().counter("parallel.failures").inc()
            _flightrec.note(
                "task_failed",
                task=key,
                error=f"{error[0]}: {error[1]}",
                attempts=attempt,
                **((contexts[index] if contexts is not None else None) or {}),
            )
            failures[index] = (error[:3], attempt)
            settled += 1

        def adopt_outcome(worker: _Worker) -> None:
            """Handle a finished task message from ``worker``."""
            index, attempt = worker.index, worker.attempt
            worker.index = None
            status, value, records, snapshot = worker.outcome
            tracer = _tracing.get_tracer()
            if tracer is not None and records:
                tracer.adopt(records)
            obs.metrics().absorb(snapshot)
            if status == "ok":
                payload, digest = value
                if hashlib.sha256(payload).hexdigest() != digest:
                    obs.metrics().counter("parallel.corrupt_results").inc()
                    settle_failure(
                        index,
                        attempt,
                        (
                            "ResultCorruption",
                            "result payload failed its integrity check",
                            "",
                        ),
                    )
                    return
                settle_ok(index, attempt, pickle.loads(payload))
            else:
                settle_failure(index, attempt, value)

        def reap(worker: _Worker, exc_type: str, message: str, counter: str) -> None:
            """Kill a sick worker, spawn a replacement, fail its task."""
            index, attempt = worker.index, worker.attempt
            worker.index = None
            obs.metrics().counter(counter).inc()
            key = describe_task(func, tasks[index]) if index is not None else None
            ctx = (
                contexts[index]
                if contexts is not None and index is not None
                else None
            )
            _flightrec.note(
                "worker_reaped",
                reason=exc_type,
                detail=message,
                worker_pid=worker.process.pid,
                task=key,
                attempt=attempt,
                **(ctx or {}),
            )
            recorder = _flightrec.get_recorder()
            if recorder is not None and exc_type == "WorkerCrash":
                # A worker dying outright is an incident; timeouts and
                # stalled heartbeats are noted but only dumped if the
                # request ultimately 5xxes (the batcher's trigger).
                recorder.dump(
                    "worker-death",
                    extra={"task": key, "detail": message, **(ctx or {})},
                )
            worker.destroy()
            pool.remove(worker)
            spawn()
            if index is not None:
                settle_failure(index, attempt, (exc_type, message, ""))

        try:
            while len(pool) < workers:
                spawn()
            while settled < n:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, index, attempt = heapq.heappop(delayed)
                    ready.append((index, attempt))
                for worker in pool:
                    if not ready:
                        break
                    if worker.busy:
                        continue
                    if not worker.process.is_alive():
                        worker.destroy()
                        pool.remove(worker)
                        worker = spawn()
                    index, attempt = ready.pop()
                    worker.dispatch(
                        index,
                        func,
                        tasks[index],
                        attempt,
                        contexts[index] if contexts is not None else None,
                    )

                # How long we can sleep before something needs attention.
                wait = 0.25
                if delayed:
                    wait = min(wait, max(0.0, delayed[0][0] - now))
                for worker in pool:
                    if not worker.busy:
                        continue
                    if self.timeout is not None:
                        wait = min(
                            wait,
                            max(0.0, worker.dispatched_at + self.timeout - now),
                        )
                    if self.heartbeat_timeout is not None:
                        wait = min(
                            wait,
                            max(
                                0.0,
                                worker.last_beat + self.heartbeat_timeout - now,
                            ),
                        )
                busy_conns = {w.conn: w for w in pool if w.busy}
                if busy_conns:
                    for conn in _mpconn.wait(
                        list(busy_conns), timeout=max(wait, 0.01)
                    ):
                        worker = busy_conns[conn]
                        try:
                            message = conn.recv()
                        except (EOFError, OSError):
                            reap(
                                worker,
                                "WorkerCrash",
                                "worker process died mid-task",
                                "parallel.worker_deaths",
                            )
                            continue
                        worker.last_beat = time.monotonic()
                        if message[0] == "done":
                            worker.outcome = message[2]
                            adopt_outcome(worker)
                elif delayed:
                    time.sleep(max(wait, 0.01))

                now = time.monotonic()
                for worker in list(pool):
                    if not worker.busy:
                        continue
                    if (
                        self.timeout is not None
                        and now - worker.dispatched_at > self.timeout
                    ):
                        reap(
                            worker,
                            "TaskTimeout",
                            f"task exceeded its {self.timeout:.1f}s deadline",
                            "parallel.timeouts",
                        )
                    elif (
                        self.heartbeat_timeout is not None
                        and now - worker.last_beat > self.heartbeat_timeout
                    ):
                        reap(
                            worker,
                            "WorkerHeartbeatLost",
                            "worker heartbeat stalled "
                            f"for {self.heartbeat_timeout:.1f}s",
                            "parallel.heartbeat_lost",
                        )
        finally:
            for worker in list(pool):
                if self.keep_alive and not worker.busy:
                    continue  # warm worker, reused by the next map
                worker.destroy(graceful=not worker.busy)
                pool.remove(worker)

        if failures:
            if strict:
                index = min(failures)
                (exc_type, exc_message, tb_text), attempts = failures[index]
                raise WorkerTaskError(
                    describe_task(func, tasks[index]),
                    tasks[index],
                    exc_type,
                    exc_message,
                    tb_text,
                    attempts,
                )
            for index, ((exc_type, exc_message, _tb), attempts) in failures.items():
                results[index] = FailedCell(
                    describe_task(func, tasks[index]),
                    tasks[index],
                    f"{exc_type}: {exc_message}",
                    attempts,
                )
        return results

    # -- high-level fan-outs ------------------------------------------------
    def characterize_workloads(
        self,
        names: Sequence[str],
        scale: str,
        seed: int,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> Dict[str, CharacterizationResult]:
        """One characterization run per workload, keyed by name."""
        tasks = [(name, scale, seed, max_instructions) for name in names]
        return dict(self.map(_characterize_task, tasks))

    def characterize_seeds(
        self,
        name: str,
        scale: str,
        seeds: Sequence[int],
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> CharacterizationResult:
        """Characterize one workload across several dataset seeds and
        fold the per-seed tool statistics into one aggregate result with
        the tools' ``merge`` protocol (always folded in ``seeds`` order,
        so the aggregate does not depend on worker scheduling)."""
        if not seeds:
            raise ValueError("characterize_seeds needs at least one seed")
        tasks = [(name, scale, seed, max_instructions) for seed in seeds]
        runs = [result for _, result in self.map(_characterize_task, tasks)]
        first = runs[0]
        with obs.span("parallel.merge", workload=name, runs=len(runs)):
            for run in runs[1:]:
                first.mix.merge(run.mix)
                first.coverage.merge(run.coverage)
                first.cache.merge(run.cache)
                first.sequences.merge(run.sequences)
                first.executed += run.executed
        return first
