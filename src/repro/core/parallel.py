"""Process-parallel experiment execution.

The characterization and evaluation workload is embarrassingly
parallel: each (program, dataset, seed) run is independent and
deterministic, exactly like the paper running ATOM over each BioPerf
binary separately.  :class:`ParallelRunner` fans such runs out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path:

* tasks are dispatched and collected with ``Pool.map``, which preserves
  input order, so aggregation order never depends on scheduling;
* every worker entry point is a module-level function taking one
  picklable task tuple and resolving workload specs *by name* in the
  worker (programs are recompiled there — compilation is deterministic);
* each run's tools are returned whole and, where combination is needed
  (multi-seed aggregation), folded with the tools' ``merge`` protocol
  in a fixed order.

``jobs <= 1`` (or a single task) short-circuits to a plain serial loop
in the calling process — no pool, no pickling — so the parallel API is
safe to use unconditionally.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.atom.runner import CharacterizationResult, characterize
from repro.workloads.registry import get_workload


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Worker entry points (module-level: must be picklable under spawn too)
# ---------------------------------------------------------------------------


def _characterize_task(
    task: Tuple[str, str, int, int],
) -> Tuple[str, CharacterizationResult]:
    """Worker: one full characterization run, resolved by workload name."""
    name, scale, seed, max_instructions = task
    spec = get_workload(name)
    result = characterize(
        spec.program(),
        spec.dataset(scale, seed),
        max_instructions=max_instructions,
    )
    return name, result


def _evaluate_task(task: Tuple[str, str, str, int]):
    """Worker: one original-vs-transformed evaluation on one platform."""
    name, platform_key, scale, seed = task
    from repro.core.pipeline import evaluate_workload
    from repro.cpu.platforms import PLATFORMS

    spec = get_workload(name)
    evaluation = evaluate_workload(
        spec, PLATFORMS[platform_key], scale=scale, seed=seed
    )
    return name, platform_key, evaluation


class ParallelRunner:
    """Maps deterministic tasks over worker processes (or serially)."""

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def map(self, func: Callable, tasks: Sequence) -> List:
        """Apply ``func`` to each task, preserving task order.

        Uses a process pool only when it can help (``jobs > 1`` and more
        than one task); otherwise runs in-process.  ``func`` must be a
        module-level function and each task must be picklable.
        """
        tasks = list(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            return [func(task) for task in tasks]
        # fork shares the already-imported modules and compile caches
        # with the workers; fall back to spawn where fork is missing.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(tasks))
        with context.Pool(processes=workers) as pool:
            return pool.map(func, tasks)

    # -- high-level fan-outs ------------------------------------------------
    def characterize_workloads(
        self,
        names: Sequence[str],
        scale: str,
        seed: int,
        max_instructions: int = 200_000_000,
    ) -> Dict[str, CharacterizationResult]:
        """One characterization run per workload, keyed by name."""
        tasks = [(name, scale, seed, max_instructions) for name in names]
        return dict(self.map(_characterize_task, tasks))

    def characterize_seeds(
        self,
        name: str,
        scale: str,
        seeds: Sequence[int],
        max_instructions: int = 200_000_000,
    ) -> CharacterizationResult:
        """Characterize one workload across several dataset seeds and
        fold the per-seed tool statistics into one aggregate result with
        the tools' ``merge`` protocol (always folded in ``seeds`` order,
        so the aggregate does not depend on worker scheduling)."""
        if not seeds:
            raise ValueError("characterize_seeds needs at least one seed")
        tasks = [(name, scale, seed, max_instructions) for seed in seeds]
        runs = [result for _, result in self.map(_characterize_task, tasks)]
        first = runs[0]
        for run in runs[1:]:
            first.mix.merge(run.mix)
            first.coverage.merge(run.coverage)
            first.cache.merge(run.cache)
            first.sequences.merge(run.sequences)
            first.executed += run.executed
        return first
