"""Process-parallel experiment execution.

The characterization and evaluation workload is embarrassingly
parallel: each (program, dataset, seed) run is independent and
deterministic, exactly like the paper running ATOM over each BioPerf
binary separately.  :class:`ParallelRunner` fans such runs out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path:

* tasks are dispatched and collected with ``Pool.map``, which preserves
  input order, so aggregation order never depends on scheduling;
* every worker entry point is a module-level function taking one
  picklable task tuple and resolving workload specs *by name* in the
  worker (programs are recompiled there — compilation is deterministic);
* each run's tools are returned whole and, where combination is needed
  (multi-seed aggregation), folded with the tools' ``merge`` protocol
  in a fixed order.

``jobs <= 1`` (or a single task) short-circuits to a plain serial loop
in the calling process — no pool, no pickling — so the parallel API is
safe to use unconditionally.

Failure and observability semantics (see ``docs/observability.md``):

* a task that raises in a worker surfaces as :class:`WorkerTaskError`
  carrying the failing task's identity (workload, scale, seed, ...)
  and the worker-side traceback — never a bare pool traceback;
* ``retries=N`` re-runs a failed task up to N more times (in the
  parent, serially — deterministic tasks that fail transiently are
  environment problems, so the retry avoids the pool); every retry and
  terminal failure emits a telemetry span and bumps the
  ``parallel.retries`` / ``parallel.failures`` counters;
* when telemetry is on, each worker captures its own spans and metric
  deltas and ships them back with its result; the parent re-roots the
  spans under the dispatching ``parallel.map`` span and folds the
  metrics into its registry, so one trace shows the whole fan-out.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback as _traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.atom.runner import CharacterizationResult, characterize
from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS
from repro.obs import tracing as _tracing
from repro.obs.metrics import begin_worker_capture as _begin_metrics_capture
from repro.obs.metrics import end_worker_capture as _end_metrics_capture
from repro.workloads.registry import get_workload

__all__ = ["ParallelRunner", "WorkerTaskError", "default_jobs"]


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


class WorkerTaskError(RuntimeError):
    """A parallel task failed; carries what was running, not just where.

    Attributes:
        task: the task tuple handed to the worker.
        description: human identity of the task (workload, seed, ...).
        exc_type: the original exception's class name.
        exc_message: the original exception's message.
        worker_traceback: the worker-side traceback text.
        attempts: how many times the task was tried in total.
    """

    def __init__(
        self,
        description: str,
        task: Any,
        exc_type: str,
        exc_message: str,
        worker_traceback: str,
        attempts: int,
    ):
        self.description = description
        self.task = task
        self.exc_type = exc_type
        self.exc_message = exc_message
        self.worker_traceback = worker_traceback
        self.attempts = attempts
        super().__init__(
            f"worker task failed after {attempts} attempt(s): {description}: "
            f"{exc_type}: {exc_message}"
        )


# ---------------------------------------------------------------------------
# Worker entry points (module-level: must be picklable under spawn too)
# ---------------------------------------------------------------------------


def _characterize_task(
    task: Tuple[str, str, int, int],
) -> Tuple[str, CharacterizationResult]:
    """Worker: one full characterization run, resolved by workload name."""
    name, scale, seed, max_instructions = task
    spec = get_workload(name)
    result = characterize(
        spec.program(),
        spec.dataset(scale, seed),
        max_instructions=max_instructions,
        workload=name,
    )
    return name, result


def _evaluate_task(task: Tuple[str, str, str, int]):
    """Worker: one original-vs-transformed evaluation on one platform."""
    name, platform_key, scale, seed = task
    from repro.core.pipeline import evaluate_workload
    from repro.cpu.platforms import PLATFORMS

    spec = get_workload(name)
    evaluation = evaluate_workload(
        spec, PLATFORMS[platform_key], scale=scale, seed=seed
    )
    return name, platform_key, evaluation


def describe_task(func: Callable, task: Any) -> str:
    """Human identity of one task tuple, by worker entry point."""
    try:
        if func is _characterize_task:
            name, scale, seed, budget = task
            return f"characterize workload={name} scale={scale} seed={seed}"
        if func is _evaluate_task:
            name, platform_key, scale, seed = task
            return (
                f"evaluate workload={name} platform={platform_key} "
                f"scale={scale} seed={seed}"
            )
    except (TypeError, ValueError):
        pass
    return f"{getattr(func, '__name__', func)}({task!r})"


def _invoke(payload: Tuple[Callable, Any, bool]) -> Tuple[str, Any, list, dict]:
    """Worker shim around one task.

    Returns ``(status, value, span_records, metrics_snapshot)`` where
    ``status`` is ``"ok"`` (value = result) or ``"error"`` (value =
    ``(exc_type, exc_message, traceback_text)``).  Exceptions never
    escape: a raw exception crossing the pool boundary loses the task
    identity and, when unpicklable, kills the whole map.
    """
    func, task, capture = payload
    if capture:
        _tracing.begin_worker_capture()
        _begin_metrics_capture()
    try:
        with obs.span(
            "parallel.task", task=describe_task(func, task), worker_pid=os.getpid()
        ):
            result = func(task)
        status, value = "ok", result
    except Exception as exc:  # noqa: BLE001 - forwarded with full context
        status = "error"
        value = (type(exc).__name__, str(exc), _traceback.format_exc())
    if capture:
        snapshot = _end_metrics_capture()
        records = _tracing.end_worker_capture()
    else:
        records, snapshot = [], {}
    return status, value, records, snapshot


class ParallelRunner:
    """Maps deterministic tasks over worker processes (or serially)."""

    def __init__(self, jobs: Optional[int] = None, retries: int = 0):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.retries = max(0, int(retries))

    # -- outcome handling ---------------------------------------------------
    def _settle(
        self, func: Callable, task: Any, outcome: Tuple[str, Any, list, dict]
    ):
        """Adopt one task's telemetry; retry or raise on failure."""
        status, value, records, snapshot = outcome
        tracer = _tracing.get_tracer()
        if tracer is not None and records:
            tracer.adopt(records)
        obs.metrics().absorb(snapshot)
        attempts = 1
        while status == "error" and attempts <= self.retries:
            obs.metrics().counter("parallel.retries").inc()
            with obs.span(
                "parallel.retry",
                task=describe_task(func, task),
                attempt=attempts + 1,
                previous_error=f"{value[0]}: {value[1]}",
            ):
                # In-process retry: spans land in the parent tracer
                # directly, so no cross-process capture (which would
                # swap out the live tracer mid-run).
                retry_outcome = _invoke((func, task, False))
            status, value, records, snapshot = retry_outcome
            if tracer is not None and records:
                tracer.adopt(records)
            obs.metrics().absorb(snapshot)
            attempts += 1
        if status == "error":
            exc_type, exc_message, tb_text = value
            obs.metrics().counter("parallel.failures").inc()
            raise WorkerTaskError(
                describe_task(func, task), task, exc_type, exc_message,
                tb_text, attempts,
            )
        return value

    def map(self, func: Callable, tasks: Sequence) -> List:
        """Apply ``func`` to each task, preserving task order.

        Uses a process pool only when it can help (``jobs > 1`` and more
        than one task); otherwise runs in-process.  ``func`` must be a
        module-level function and each task must be picklable.  A task
        that raises (after ``retries`` re-runs) surfaces as
        :class:`WorkerTaskError` with the task identity attached.
        """
        tasks = list(tasks)
        capture = obs.enabled()
        workers = min(self.jobs, len(tasks))
        with obs.span(
            "parallel.map",
            func=getattr(func, "__name__", str(func)),
            tasks=len(tasks),
            workers=max(workers, 1),
        ):
            obs.metrics().gauge("parallel.workers").set(max(workers, 1))
            obs.metrics().counter("parallel.tasks").inc(len(tasks))
            if self.jobs <= 1 or len(tasks) <= 1:
                # Serial: tasks run in this process, so their spans land
                # in the live tracer directly — no capture handoff.
                return [
                    self._settle(func, task, _invoke((func, task, False)))
                    for task in tasks
                ]
            # fork shares the already-imported modules and compile caches
            # with the workers; fall back to spawn where fork is missing.
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context("spawn")
            payloads = [(func, task, capture) for task in tasks]
            with context.Pool(processes=workers) as pool:
                outcomes = pool.map(_invoke, payloads)
            return [
                self._settle(func, task, outcome)
                for task, outcome in zip(tasks, outcomes)
            ]

    # -- high-level fan-outs ------------------------------------------------
    def characterize_workloads(
        self,
        names: Sequence[str],
        scale: str,
        seed: int,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> Dict[str, CharacterizationResult]:
        """One characterization run per workload, keyed by name."""
        tasks = [(name, scale, seed, max_instructions) for name in names]
        return dict(self.map(_characterize_task, tasks))

    def characterize_seeds(
        self,
        name: str,
        scale: str,
        seeds: Sequence[int],
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> CharacterizationResult:
        """Characterize one workload across several dataset seeds and
        fold the per-seed tool statistics into one aggregate result with
        the tools' ``merge`` protocol (always folded in ``seeds`` order,
        so the aggregate does not depend on worker scheduling)."""
        if not seeds:
            raise ValueError("characterize_seeds needs at least one seed")
        tasks = [(name, scale, seed, max_instructions) for seed in seeds]
        runs = [result for _, result in self.map(_characterize_task, tasks)]
        first = runs[0]
        with obs.span("parallel.merge", workload=name, runs=len(runs)):
            for run in runs[1:]:
                first.mix.merge(run.mix)
                first.coverage.merge(run.coverage)
                first.cache.merge(run.cache)
                first.sequences.merge(run.sequences)
                first.executed += run.executed
        return first
