"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with right-aligned numeric-looking cells."""
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            width = widths[index]
            if index == 0:
                parts.append(cell.ljust(width))
            else:
                parts.append(cell.rjust(width))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(render_row(row))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "n.a."
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def pct(value: Optional[float], digits: int = 1) -> str:
    """Format a fraction as a percentage string ('n.a.' for None)."""
    if value is None:
        return "n.a."
    return f"{value * 100:.{digits}f}%"


def fmt(value: Optional[float], digits: int = 2) -> str:
    if value is None:
        return "n.a."
    return f"{value:.{digits}f}"
