"""Full paper-vs-measured report generation (EXPERIMENTS.md).

Runs every experiment and renders a markdown report with the paper's
published number next to the measured one for each table and figure.
Used by ``python -m repro.core.report [char_scale] [eval_scale] [out]``
to regenerate ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from repro.core import experiments as E
from repro.core.pipeline import harmonic_mean_speedup
from repro.core.reporting import pct
from repro.workloads.registry import all_workloads, amenable_workloads, get_workload


def _md_table(headers: List[str], rows: List[List[object]]) -> str:
    def cell(value: object) -> str:
        if value is None:
            return "n.a."
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(out)


def generate(
    char_scale: str = "medium",
    eval_scale: str = "large",
    seed: int = 0,
    jobs: int = 1,
    cache=None,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    faults=None,
) -> str:
    """Run everything and return the EXPERIMENTS.md markdown.

    ``jobs > 1`` fans the independent characterization and evaluation
    runs over worker processes; ``cache`` (a
    :class:`repro.core.runcache.RunCache`) persists characterization
    runs so a regeneration with unchanged inputs skips them entirely.
    The emitted report is byte-identical either way (modulo the
    generation-time footer).  ``retries``/``timeout``/``faults`` set
    the session's resilience policy (defaults: ``$REPRO_RETRIES`` /
    ``$REPRO_TIMEOUT`` / ``$REPRO_FAULTS``); a Table 8 cell that fails
    past retries renders as an annotated FAILED row instead of
    aborting the whole report.
    """
    started = time.time()
    from repro.api import RunConfig, Session

    session = Session(
        RunConfig(
            scale=char_scale,
            eval_scale=eval_scale,
            seed=seed,
            jobs=jobs,
            cache=False,
            retries=retries,
            timeout=timeout,
            faults=faults,
        )
    )
    # ``cache`` arrives as a RunCache instance (None = caching off), so
    # graft it onto the session rather than having it build its own.
    session._cache = cache
    context = session
    context.prefetch()
    sections: List[str] = []

    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Reproduction of every table and figure of *Load Instruction\n"
        "Characterization and Acceleration of the BioPerf Programs*\n"
        "(IISWC 2006).  Characterization scale: "
        f"`{char_scale}` (class-B analogue); evaluation scale: "
        f"`{eval_scale}` (class-C analogue); seed {seed}.\n\n"
        "Absolute instruction counts and cycle counts are simulator\n"
        "quantities at ~10^6 the paper's scale; percentages, rates, and\n"
        "speedups are the comparable numbers.  Regenerate this file with\n"
        "`python -m repro.core.report`."
    )

    # -- Figure 1 / Table 1 ------------------------------------------------
    mix_rows = E.figure1_instruction_mix(context)
    sections.append(
        "## Figure 1 — instruction profile\n\n"
        "Paper: loads average ~30% of executed instructions across the\n"
        "nine programs; conditional branches ~10-15%.\n\n"
        + _md_table(
            ["program", "loads", "stores", "cond branches", "other"],
            [
                [r.workload, pct(r.loads), pct(r.stores), pct(r.branches), pct(r.other)]
                for r in mix_rows
            ],
        )
        + f"\n\nMeasured load average: "
        f"{pct(sum(r.loads for r in mix_rows) / len(mix_rows))}."
    )

    sections.append(
        "## Table 1 — executed instructions and floating-point share\n\n"
        "Counts are scaled-down analogues (paper runs 68-894 **billion**\n"
        "instructions); the FP fractions are directly comparable.\n\n"
        + _md_table(
            ["program", "instructions (measured)", "paper (B)", "FP measured", "FP paper"],
            [
                [
                    r.workload,
                    r.instructions,
                    get_workload(r.workload).paper.instructions_billions,
                    pct(r.fp_fraction, 2),
                    pct(r.paper_fp_fraction, 2),
                ]
                for r in mix_rows
            ],
        )
    )

    # -- Figure 2 ---------------------------------------------------------------
    coverage_rows = E.figure2_coverage(context)
    sections.append(
        "## Figure 2 — cumulative load coverage vs static loads\n\n"
        "Paper: ~80 static loads cover >90% of executed loads in the\n"
        "BioPerf codes but only ~10-58% in SPEC CPU2000 integer codes.\n\n"
        + _md_table(
            ["program", "suite", "static loads", "coverage @80", "loads for 90%"],
            [
                [r.workload, r.suite, r.static_loads, pct(r.coverage_at_80), r.loads_for_90pct]
                for r in coverage_rows
            ],
        )
    )

    # -- Table 2 -----------------------------------------------------------------
    cache_rows = E.table2_cache(context)
    paper_t2 = {
        "blast": (0.0178, 0.0405, 0.00072, 3.14),
        "clustalw": (0.0190, 0.0000, 0.0, 3.10),
        "dnapenny": (0.0046, 0.0430, 0.0002, 3.04),
        "fasta": (0.0047, 0.0005, 0.0, 3.02),
        "hmmcalibrate": (0.0161, 0.0424, 0.00068, 3.13),
        "hmmpfam": (0.0067, 0.1064, 0.00071, 3.08),
        "hmmsearch": (0.0035, 0.0769, 0.00027, 3.04),
        "predator": (0.0046, 0.0015, 0.00001, 3.02),
        "promlk": (0.0052, 0.0493, 0.00026, 3.04),
    }
    sections.append(
        "## Table 2 — cache performance (Table 3 configuration)\n\n"
        "Paper average: L1 local 0.91%, overall 0.03%, AMAT 3.07.  Our\n"
        "L2 local rates run high because at simulator scale nearly every\n"
        "L1 miss is compulsory (one-pass streaming), so it misses L2 as\n"
        "well; the load-bearing claims — L1 satisfies almost everything\n"
        "and AMAT ~= the L1 hit latency — reproduce.\n\n"
        + _md_table(
            ["program", "L1 local", "paper", "overall", "paper", "AMAT", "paper"],
            [
                [
                    r.workload,
                    pct(r.l1_local, 2),
                    pct(paper_t2[r.workload][0], 2),
                    pct(r.overall, 3),
                    pct(paper_t2[r.workload][2], 3),
                    f"{r.amat:.2f}",
                    f"{paper_t2[r.workload][3]:.2f}",
                ]
                for r in cache_rows
            ],
        )
    )

    # -- Table 4 --------------------------------------------------------------------
    seq_rows = E.table4_sequences(context)
    sections.append(
        "## Table 4 — load→branch and branch→load sequences\n\n"
        "Paper's key ordering: the HMMER codes (and blast) are dominated\n"
        "by load→branch sequences with ~6-20% misprediction on the fed\n"
        "branches; promlk is the low outlier in both columns.\n\n"
        + _md_table(
            [
                "program",
                "ld→br",
                "paper",
                "fed-br misp",
                "paper",
                "after hard br",
                "paper",
            ],
            [
                [
                    r.workload,
                    pct(r.load_to_branch),
                    pct(r.paper_load_to_branch),
                    pct(r.seq_misprediction),
                    pct(r.paper_seq_misprediction),
                    pct(r.after_hard_branch),
                    pct(r.paper_after_hard),
                ]
                for r in seq_rows
            ],
        )
    )

    # -- Table 4 follow-up: LDBP reclamation ---------------------------------------
    ldbp_rows = E.ldbp_reclamation(context)
    sections.append(
        "## LDBP — reclaiming the hard-to-predict branch population\n\n"
        "Table 4 characterizes the problem; a load-driven branch\n"
        "predictor (arXiv:2009.09064) is the acceleration it points at.\n"
        "Per workload: how many ≥5%-misprediction branches LDBP pulls\n"
        "back under the threshold, and the precompute coverage\n"
        "(docs/branch-prediction.md).\n\n"
        + _md_table(
            [
                "program",
                "hard br",
                "reclaimed",
                "misp cut",
                "base rate",
                "ldbp rate",
                "coverage",
            ],
            [
                [
                    r.workload,
                    r.hard_branches,
                    r.reclaimed_branches,
                    pct(r.misprediction_reduction),
                    pct(r.baseline_rate, 2),
                    pct(r.ldbp_rate, 2),
                    pct(r.precompute_coverage),
                ]
                for r in ldbp_rows
            ],
        )
    )

    # -- Table 5 -------------------------------------------------------------------
    profile_rows = E.table5_load_profile(context, "hmmsearch", top=8)
    spec5 = get_workload("hmmsearch")
    sections.append(
        "## Table 5 — hot-load profile of hmmsearch\n\n"
        "Paper: four loads at ~3.97% of executed loads each, L1 miss\n"
        "rates ≤0.07%, following-branch misprediction 0.5-38%, all in\n"
        "P7Viterbi (fast_algorithms.c lines 132-136).\n\n"
        + _md_table(
            ["load", "frequency", "L1 miss", "fed-br misp", "line", "function", "file"],
            [
                [
                    row.sid,
                    pct(row.frequency, 2),
                    pct(row.l1_miss_rate, 2),
                    pct(row.branch_misprediction_rate, 2),
                    row.line,
                    spec5.hot_function,
                    spec5.hot_file,
                ]
                for row in profile_rows
            ],
        )
    )

    # -- Table 6 ---------------------------------------------------------------------
    transform_rows = E.table6_transforms()
    sections.append(
        "## Table 6 — transformation footprint\n\n"
        "Our counts are source-diff derived (the paper's are hand\n"
        "counts), so they run larger for the HMMER 6(c) rewrite with its\n"
        "duplicated loop tail; the relative sizes match (predator\n"
        "smallest, hmm* largest).\n\n"
        + _md_table(
            ["program", "static loads", "paper", "lines of C", "paper"],
            [
                [r.workload, r.loads_considered, r.paper_loads, r.loc_involved, r.paper_loc]
                for r in transform_rows
            ],
        )
    )

    # -- Tables 7, 8 / Figure 9 --------------------------------------------------------
    from repro.core.parallel import FailedCell
    from repro.cpu.platforms import PLATFORMS

    runtime_rows = E.table8_runtimes(
        scale=eval_scale, seed=seed, runner=session.runner()
    )
    summaries = E.figure9_speedups(runtime_rows)
    failed_cells = sum(1 for r in runtime_rows if isinstance(r, FailedCell))
    t8_note = ""
    if failed_cells:
        t8_note = (
            f"\n\n**{failed_cells} cell(s) FAILED after retries — partial "
            "results; see docs/robustness.md.**"
        )
    t8_body = []
    for r in runtime_rows:
        if isinstance(r, FailedCell):
            t8_body.append(
                [r.task[0], PLATFORMS[r.task[1]].name, "—", "—", "FAILED", None]
            )
            continue
        t8_body.append(
            [
                r.workload,
                r.platform,
                r.original_cycles,
                r.transformed_cycles,
                pct(r.speedup),
                pct(r.paper_speedup),
            ]
        )
    sections.append(
        "## Table 8 — original vs load-transformed runtimes\n\n"
        "The paper reports seconds on real machines; we report simulated\n"
        "cycles on the Table 7 machine models, so the comparable numbers\n"
        "are the per-program speedups.\n\n"
        + _md_table(
            ["program", "platform", "orig cycles", "xform cycles", "speedup", "paper speedup"],
            t8_body,
        )
        + t8_note
    )

    workloads = []
    for s in summaries:
        for w in s.per_workload:
            if w not in workloads:
                workloads.append(w)
    sections.append(
        "## Figure 9 — speedups and harmonic means\n\n"
        "Paper harmonic means: Alpha 25.4%, PowerPC 15.1%, Pentium 4\n"
        "4.3%, Itanium 12.7%.\n\n"
        + _md_table(
            ["platform"] + workloads + ["hmean (measured)", "hmean (paper)"],
            [
                [s.platform]
                + [
                    pct(s.per_workload[w]) if w in s.per_workload else "FAILED"
                    for w in workloads
                ]
                + [pct(s.harmonic_mean), pct(s.paper_harmonic_mean)]
                for s in summaries
            ],
        )
    )

    elapsed = time.time() - started
    sections.append(
        f"---\n\nGenerated in {elapsed:.0f}s by `repro.core.report.generate"
        f"(char_scale={char_scale!r}, eval_scale={eval_scale!r}, seed={seed})`."
    )
    return "\n\n".join(sections) + "\n"


def main(argv: Optional[List[str]] = None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    char_scale = argv[0] if len(argv) > 0 else "medium"
    eval_scale = argv[1] if len(argv) > 1 else "large"
    out_path = argv[2] if len(argv) > 2 else "EXPERIMENTS.md"
    text = generate(char_scale, eval_scale)
    with open(out_path, "w") as handle:
        handle.write(text)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
