"""Persistent on-disk cache of characterization runs.

Characterizing a workload is deterministic: the same program, dataset
scale, seed, and tool configuration always produce the same tool state.
The paper's workflow (ATOM: instrument once, analyse many times) makes
that determinism worth banking — regenerating EXPERIMENTS.md or
re-running a benchmark should not pay for interpretation the previous
invocation already did.

:class:`RunCache` stores pickled :class:`~repro.atom.runner.
CharacterizationResult` objects keyed by a fingerprint of everything
that can change the result:

* a cache format version (bumped when tool state layouts change),
* the workload name, dataset scale, and seed,
* the interpreter instruction budget,
* the program's full disassembly (so compiler changes invalidate), and
* a stable rendering of the dataset bindings (so generator changes
  invalidate even when the scale string does not).

Anything that fails to fingerprint, load, or unpickle degrades to a
cache miss — the cache can never change results, only skip work.

Entries are written in a self-verifying envelope (magic header +
SHA-256 of the pickled payload); :meth:`RunCache.load` re-hashes the
payload on every read, so bit rot, truncation, or a torn write is
*detected*, never silently unpickled.  A bad entry is moved into a
``quarantine/`` subdirectory (for post-mortem) rather than deleted,
counted under the persisted ``quarantined`` counter and the
``runcache.quarantined`` metric, and the load degrades to a miss.

Each cache directory also keeps a small ``_stats.json`` sidecar with
cumulative hit/miss/store/invalid/eviction counters (surfaced by
``repro cache stats`` and mirrored into the :mod:`repro.obs.metrics`
registry when telemetry is on), so cache effectiveness is visible
across processes, not just within one run.

The default location is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Iterable, Mapping, Optional

from repro import obs
from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS

#: Bump when the pickled layout of tool state changes incompatibly.
#: v2: entries carry a magic header + SHA-256 payload digest.
CACHE_VERSION = 2

#: Filename suffix for cache entries.
_SUFFIX = ".pkl"

#: Sidecar file holding the persisted counters (not a cache entry).
_STATS_FILE = "_stats.json"

#: The counters persisted per cache directory.
_STAT_KEYS = ("hits", "misses", "stores", "invalid", "evictions", "quarantined")

#: Leading bytes of every v2 cache entry.
_MAGIC = b"repro-cache\x00"

#: Subdirectory (under the cache dir) where corrupt entries are parked.
_QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> str:
    """Resolve the cache directory from the environment."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _feed_value(hasher, value: object) -> None:
    """Feed one dataset binding into the hash, recursively and stably."""
    if isinstance(value, (list, tuple)):
        hasher.update(b"[")
        for item in value:
            _feed_value(hasher, item)
        hasher.update(b"]")
    else:
        # repr() of ints/floats/strings is stable across runs; floats
        # round-trip exactly (shortest-repr guarantee since CPython 3.1).
        hasher.update(repr(value).encode())
        hasher.update(b";")


def fingerprint_bindings(bindings: Mapping[str, object]) -> str:
    """Stable digest of a dataset's array/scalar bindings."""
    hasher = hashlib.sha256()
    for name in sorted(bindings):
        hasher.update(name.encode())
        hasher.update(b"=")
        _feed_value(hasher, bindings[name])
    return hasher.hexdigest()


def run_fingerprint(
    name: str,
    scale: str,
    seed: int,
    max_instructions: int,
    program_text: str,
    bindings: Mapping[str, object],
    tool_config: str = "standard",
) -> str:
    """Cache key for one characterization run.

    ``program_text`` should be the program's disassembly — the full
    machine-level identity of what will execute — so any compiler or
    source change invalidates the entry.  ``tool_config`` names the tool
    set attached to the run; the default four-tool characterization uses
    ``"standard"``.
    """
    hasher = hashlib.sha256()
    for part in (
        f"v{CACHE_VERSION}",
        name,
        scale,
        str(seed),
        str(max_instructions),
        tool_config,
        program_text,
        fingerprint_bindings(bindings),
    ):
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def workload_fingerprint(
    name: str,
    scale: str,
    seed: int,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    tool_config: str = "standard",
) -> str:
    """Fingerprint of a registered workload's characterization run.

    Resolves the workload by name and feeds its current disassembly and
    dataset bindings into :func:`run_fingerprint`.  This is the **only**
    place run identity is computed: :class:`repro.api.Session` keys the
    cache with it, :class:`repro.trace.TraceStore` keys trace artifacts
    with it (under ``tool_config="trace"``), and :func:`repro.obs.
    manifest.run_manifest` stamps it into manifests, so they can never
    drift apart.
    """
    from repro.workloads.registry import get_workload

    spec = get_workload(name)
    return run_fingerprint(
        name,
        scale,
        seed,
        max_instructions,
        spec.program().disassemble(),
        spec.dataset(scale, seed),
        tool_config=tool_config,
    )


class RunCache:
    """Filesystem-backed store of pickled characterization results."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_cache_dir()

    # -- entry paths --------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _SUFFIX)

    def _entries(self) -> Iterable[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            os.path.join(self.directory, n) for n in names if n.endswith(_SUFFIX)
        ]

    # -- persisted counters --------------------------------------------------
    def _stats_path(self) -> str:
        return os.path.join(self.directory, _STATS_FILE)

    def _read_counters(self) -> Dict[str, int]:
        try:
            with open(self._stats_path()) as handle:
                raw = json.load(handle)
            return {key: int(raw.get(key, 0)) for key in _STAT_KEYS}
        except (OSError, ValueError, TypeError):
            return {key: 0 for key in _STAT_KEYS}

    def _bump(self, **deltas: int) -> None:
        """Fold counter deltas into ``_stats.json`` (best effort) and
        mirror them into the live metrics registry when telemetry is on.

        The read-modify-write is not locked; concurrent runs may lose a
        few increments, which is acceptable for effectiveness counters
        — the cache itself stays correct regardless.
        """
        registry = obs.metrics()
        for key, delta in deltas.items():
            if delta:
                registry.counter(f"runcache.{key}").inc(delta)
        try:
            counters = self._read_counters()
            for key, delta in deltas.items():
                counters[key] = counters.get(key, 0) + delta
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-stats-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(counters, handle)
            os.replace(tmp_path, self._stats_path())
        except OSError:
            pass

    def _quarantine(self, key: str) -> None:
        """Park a corrupt entry under ``quarantine/`` for post-mortem.

        Moving (not deleting) keeps the evidence while guaranteeing the
        bad bytes can never be loaded again; a failed move falls back
        to best-effort deletion so the corrupt entry cannot keep
        resurfacing as an invalid load.
        """
        source = self._path(key)
        try:
            pen = os.path.join(self.directory, _QUARANTINE_DIR)
            os.makedirs(pen, exist_ok=True)
            os.replace(source, os.path.join(pen, key + _SUFFIX))
        except OSError:
            try:
                os.unlink(source)
            except OSError:
                return
        self._bump(quarantined=1)

    # -- load / store --------------------------------------------------------
    def load(self, key: str) -> Optional[object]:
        """The cached object for ``key``, or None on any failure.

        Every read re-verifies the entry's envelope: magic header,
        then SHA-256 of the payload against the stored digest, then
        unpickling.  A failure at any step quarantines the entry and
        counts as an invalid miss.
        """
        try:
            with open(self._path(key), "rb") as handle:
                blob = handle.read()
        except OSError:
            self._bump(misses=1)
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("missing cache magic")
            header_end = blob.index(b"\n", len(_MAGIC))
            digest = blob[len(_MAGIC):header_end].decode("ascii")
            payload = blob[header_end + 1:]
            if hashlib.sha256(payload).hexdigest() != digest:
                raise ValueError("cache payload digest mismatch")
            value = pickle.loads(payload)
        except Exception:
            # Missing magic (foreign/legacy file), digest mismatch
            # (bit rot, torn write), or an unpicklable payload: an
            # *invalid* entry, counted apart from plain misses and
            # moved out of the way.  pickle can raise nearly anything
            # on arbitrary bytes, so no narrower list is safe.
            self._bump(misses=1, invalid=1)
            self._quarantine(key)
            return None
        self._bump(hits=1)
        return value

    def store(self, key: str, value: object) -> bool:
        """Atomically persist ``value`` under ``key``; False on failure."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_MAGIC)
                    handle.write(digest.encode("ascii"))
                    handle.write(b"\n")
                    handle.write(payload)
                os.replace(tmp_path, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            self._bump(stores=1)
            return True
        except (OSError, pickle.PicklingError, TypeError):
            return False

    # -- maintenance ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entry count, total size, and persisted effectiveness counters."""
        entries = list(self._entries())
        total = 0
        for path in entries:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        stats: Dict[str, object] = {
            "directory": self.directory,
            "entries": len(entries),
            "bytes": total,
        }
        stats.update(self._read_counters())
        return stats

    def clear(self) -> int:
        """Delete every entry (including quarantined ones) and reset
        counters; returns the number of live entries removed."""
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        pen = os.path.join(self.directory, _QUARANTINE_DIR)
        try:
            for name in os.listdir(pen):
                try:
                    os.unlink(os.path.join(pen, name))
                except OSError:
                    pass
        except OSError:
            pass
        try:
            os.unlink(self._stats_path())
        except OSError:
            pass
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict oldest entries (by mtime) until the cache fits
        ``max_bytes``; returns the number evicted.

        Eviction order is access recency where the filesystem records
        it (``load`` re-reads bump atime, not mtime, so this is
        write-recency LRU: the entries least recently *produced* go
        first — deterministic and good enough for a result cache).
        """
        entries = []
        total = 0
        for path in self._entries():
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
            total += info.st_size
        entries.sort()
        evicted = 0
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            self._bump(evictions=evicted)
        return evicted
