"""Persistent on-disk cache of characterization runs.

Characterizing a workload is deterministic: the same program, dataset
scale, seed, and tool configuration always produce the same tool state.
The paper's workflow (ATOM: instrument once, analyse many times) makes
that determinism worth banking — regenerating EXPERIMENTS.md or
re-running a benchmark should not pay for interpretation the previous
invocation already did.

:class:`RunCache` stores pickled :class:`~repro.atom.runner.
CharacterizationResult` objects keyed by a fingerprint of everything
that can change the result:

* a cache format version (bumped when tool state layouts change),
* the workload name, dataset scale, and seed,
* the interpreter instruction budget,
* the program's full disassembly (so compiler changes invalidate), and
* a stable rendering of the dataset bindings (so generator changes
  invalidate even when the scale string does not).

Anything that fails to fingerprint, load, or unpickle degrades to a
cache miss — the cache can never change results, only skip work.

The default location is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Dict, Iterable, Mapping, Optional

#: Bump when the pickled layout of tool state changes incompatibly.
CACHE_VERSION = 1

#: Filename suffix for cache entries.
_SUFFIX = ".pkl"


def default_cache_dir() -> str:
    """Resolve the cache directory from the environment."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _feed_value(hasher, value: object) -> None:
    """Feed one dataset binding into the hash, recursively and stably."""
    if isinstance(value, (list, tuple)):
        hasher.update(b"[")
        for item in value:
            _feed_value(hasher, item)
        hasher.update(b"]")
    else:
        # repr() of ints/floats/strings is stable across runs; floats
        # round-trip exactly (shortest-repr guarantee since CPython 3.1).
        hasher.update(repr(value).encode())
        hasher.update(b";")


def fingerprint_bindings(bindings: Mapping[str, object]) -> str:
    """Stable digest of a dataset's array/scalar bindings."""
    hasher = hashlib.sha256()
    for name in sorted(bindings):
        hasher.update(name.encode())
        hasher.update(b"=")
        _feed_value(hasher, bindings[name])
    return hasher.hexdigest()


def run_fingerprint(
    name: str,
    scale: str,
    seed: int,
    max_instructions: int,
    program_text: str,
    bindings: Mapping[str, object],
    tool_config: str = "standard",
) -> str:
    """Cache key for one characterization run.

    ``program_text`` should be the program's disassembly — the full
    machine-level identity of what will execute — so any compiler or
    source change invalidates the entry.  ``tool_config`` names the tool
    set attached to the run; the default four-tool characterization uses
    ``"standard"``.
    """
    hasher = hashlib.sha256()
    for part in (
        f"v{CACHE_VERSION}",
        name,
        scale,
        str(seed),
        str(max_instructions),
        tool_config,
        program_text,
        fingerprint_bindings(bindings),
    ):
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


class RunCache:
    """Filesystem-backed store of pickled characterization results."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_cache_dir()

    # -- entry paths --------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _SUFFIX)

    def _entries(self) -> Iterable[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            os.path.join(self.directory, n) for n in names if n.endswith(_SUFFIX)
        ]

    # -- load / store --------------------------------------------------------
    def load(self, key: str) -> Optional[object]:
        """The cached object for ``key``, or None on any failure."""
        try:
            with open(self._path(key), "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Missing, unreadable, truncated, corrupt, or written by an
            # incompatible version: all just cache misses.  pickle can
            # raise nearly anything on arbitrary bytes (garbage often
            # starts with a valid opcode), so no narrower list is safe.
            return None

    def store(self, key: str, value: object) -> bool:
        """Atomically persist ``value`` under ``key``; False on failure."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            return True
        except (OSError, pickle.PicklingError, TypeError):
            return False

    # -- maintenance ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entry count and total size of the cache directory."""
        entries = list(self._entries())
        total = 0
        for path in entries:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return {
            "directory": self.directory,
            "entries": len(entries),
            "bytes": total,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
