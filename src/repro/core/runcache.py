"""Persistent on-disk cache of characterization runs.

Characterizing a workload is deterministic: the same program, dataset
scale, seed, and tool configuration always produce the same tool state.
The paper's workflow (ATOM: instrument once, analyse many times) makes
that determinism worth banking — regenerating EXPERIMENTS.md or
re-running a benchmark should not pay for interpretation the previous
invocation already did.

:class:`RunCache` stores pickled :class:`~repro.atom.runner.
CharacterizationResult` objects keyed by a fingerprint of everything
that can change the result:

* a cache format version (bumped when tool state layouts change),
* the workload name, dataset scale, and seed,
* the interpreter instruction budget,
* the program's full disassembly (so compiler changes invalidate), and
* a stable rendering of the dataset bindings (so generator changes
  invalidate even when the scale string does not).

Anything that fails to fingerprint, load, or unpickle degrades to a
cache miss — the cache can never change results, only skip work.

Entries are written in a self-verifying envelope (magic header +
SHA-256 of the pickled payload); :meth:`RunCache.load` re-hashes the
payload on every read, so bit rot, truncation, or a torn write is
*detected*, never silently unpickled.  A bad entry is moved into a
``quarantine/`` subdirectory (for post-mortem) rather than deleted,
counted under the persisted ``quarantined`` counter and the
``runcache.quarantined`` metric, and the load degrades to a miss.

The cache directory is safe to **share between processes** — the
cluster in :mod:`repro.serve.cluster` points every replica at one
directory so any replica answers any memoized fingerprint.  Writes
stage into per-writer temp files and publish with one atomic
``os.replace`` (fsynced first, so a crash never publishes a torn
entry); concurrent stores of the same fingerprint are benign because
runs are deterministic and both payloads are bit-identical.  Readers
hold an open file descriptor for the whole read, so a concurrent
replace can never hand them half an old and half a new entry.

Each cache directory also keeps a small ``_stats.json`` sidecar with
cumulative hit/miss/store/invalid/eviction counters (surfaced by
``repro cache stats`` and mirrored into the :mod:`repro.obs.metrics`
registry when telemetry is on), so cache effectiveness is visible
across processes, not just within one run.

The default location is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro import obs
from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS

#: Bump when the pickled layout of tool state changes incompatibly,
#: or when a tool's semantics change (same layout, different numbers).
#: v2: entries carry a magic header + SHA-256 payload digest.
#: v3: SequenceProfile stops attributing loads across unconditional
#: jumps, so cached after-hard-branch fractions are incomparable.
CACHE_VERSION = 3

#: Filename suffix for cache entries.
_SUFFIX = ".pkl"

#: Sidecar file holding the persisted counters (not a cache entry).
_STATS_FILE = "_stats.json"

#: Counter operations batched in memory between sidecar rewrites for
#: long-lived handles that opt in (see ``RunCache.__init__``).
_STATS_FLUSH_OPS = 64

#: The counters persisted per cache directory.
_STAT_KEYS = ("hits", "misses", "stores", "invalid", "evictions", "quarantined")

#: Leading bytes of every v2 cache entry.
_MAGIC = b"repro-cache\x00"

#: Subdirectory (under the cache dir) where corrupt entries are parked.
_QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> str:
    """Resolve the cache directory from the environment."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _feed_value(parts: list, value: object) -> None:
    """Append one dataset binding's stable encoding to ``parts``."""
    if isinstance(value, (list, tuple)):
        parts.append(b"[")
        for item in value:
            _feed_value(parts, item)
        parts.append(b"]")
    else:
        # repr() of ints/floats/strings is stable across runs; floats
        # round-trip exactly (shortest-repr guarantee since CPython 3.1).
        parts.append(repr(value).encode())
        parts.append(b";")


def fingerprint_bindings(bindings: Mapping[str, object]) -> str:
    """Stable digest of a dataset's array/scalar bindings.

    The encoding is accumulated into one buffer and hashed with a
    single update: tens of thousands of per-scalar ``hasher.update``
    calls dominated fingerprinting cost on large datasets, and the
    byte stream (hence every existing fingerprint) is unchanged.
    """
    parts: list = []
    for name in sorted(bindings):
        parts.append(name.encode())
        parts.append(b"=")
        _feed_value(parts, bindings[name])
    return hashlib.sha256(b"".join(parts)).hexdigest()


def run_fingerprint(
    name: str,
    scale: str,
    seed: int,
    max_instructions: int,
    program_text: str,
    bindings: Mapping[str, object],
    tool_config: str = "standard",
) -> str:
    """Cache key for one characterization run.

    ``program_text`` should be the program's disassembly — the full
    machine-level identity of what will execute — so any compiler or
    source change invalidates the entry.  ``tool_config`` names the tool
    set attached to the run; the default four-tool characterization uses
    ``"standard"``.
    """
    hasher = hashlib.sha256()
    for part in (
        f"v{CACHE_VERSION}",
        name,
        scale,
        str(seed),
        str(max_instructions),
        tool_config,
        program_text,
        fingerprint_bindings(bindings),
    ):
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def workload_fingerprint(
    name: str,
    scale: str,
    seed: int,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    tool_config: str = "standard",
) -> str:
    """Fingerprint of a registered workload's characterization run.

    Resolves the workload by name and feeds its current disassembly and
    dataset bindings into :func:`run_fingerprint`.  This is the **only**
    place run identity is computed: :class:`repro.api.Session` keys the
    cache with it, :class:`repro.trace.TraceStore` keys trace artifacts
    with it (under ``tool_config="trace"``), and :func:`repro.obs.
    manifest.run_manifest` stamps it into manifests, so they can never
    drift apart.
    """
    from repro.workloads.registry import get_workload

    spec = get_workload(name)
    return run_fingerprint(
        name,
        scale,
        seed,
        max_instructions,
        _disassembly(name, spec.program()),
        spec.dataset(scale, seed),
        tool_config=tool_config,
    )


#: name -> (program object, its disassembly text).  The program is
#: seed- and scale-independent, so its (expensive) disassembly is the
#: same for every fingerprint of a workload; holding the program object
#: itself keeps the identity check exact even if a test re-registers a
#: workload with a different program.
_DISASSEMBLY_MEMO: Dict[str, Tuple[object, str]] = {}


def _disassembly(name: str, program) -> str:
    cached = _DISASSEMBLY_MEMO.get(name)
    if cached is not None and cached[0] is program:
        return cached[1]
    text = program.disassemble()
    _DISASSEMBLY_MEMO[name] = (program, text)
    return text


class RunCache:
    """Filesystem-backed store of pickled characterization results."""

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        stats_flush_ops: int = 1,
    ):
        """``stats_flush_ops`` batches counter persistence: the
        ``_stats.json`` sidecar is rewritten once per that many counted
        operations instead of per operation.  The default of 1 keeps
        the original contract — counters visible to any other handle
        immediately — which ad-hoc handles (CLI, tests) rely on; the
        long-lived :class:`repro.api.Session` opts into batching
        (``_STATS_FLUSH_OPS``) because a per-hit read-modify-write of
        the sidecar costs about as much as loading the entry itself on
        the warm serving path, and it flushes on close."""
        self.directory = directory or default_cache_dir()
        self._stats_flush_ops = max(1, int(stats_flush_ops))
        self._pending: Dict[str, int] = {}
        self._pending_ops = 0

    # -- entry paths --------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _SUFFIX)

    def _entries(self) -> Iterable[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            os.path.join(self.directory, n) for n in names if n.endswith(_SUFFIX)
        ]

    # -- persisted counters --------------------------------------------------
    def _stats_path(self) -> str:
        return os.path.join(self.directory, _STATS_FILE)

    def _read_counters(self) -> Dict[str, int]:
        try:
            with open(self._stats_path()) as handle:
                raw = json.load(handle)
            return {key: int(raw.get(key, 0)) for key in _STAT_KEYS}
        except (OSError, ValueError, TypeError):
            return {key: 0 for key in _STAT_KEYS}

    def _bump(self, **deltas: int) -> None:
        """Fold counter deltas into the pending batch (and mirror them
        into the live metrics registry immediately when telemetry is
        on).  The sidecar file is rewritten once every
        ``stats_flush_ops`` counted operations (default: every one),
        plus whenever :meth:`stats` is read, so observed counters are
        always current.
        """
        registry = obs.metrics()
        for key, delta in deltas.items():
            if delta:
                registry.counter(f"runcache.{key}").inc(delta)
                self._pending[key] = self._pending.get(key, 0) + delta
                self._pending_ops += 1
        if self._pending_ops >= self._stats_flush_ops:
            self.flush_stats()

    def flush_stats(self) -> None:
        """Persist pending counter deltas to ``_stats.json`` now.

        Best effort, like the counters themselves: the read-modify-
        write is not locked, so concurrent runs may lose a few
        increments, and a batching process that exits without flushing
        loses at most ``stats_flush_ops - 1`` — acceptable for
        effectiveness counters, while the cache entries stay correct
        regardless.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        self._pending_ops = 0
        try:
            counters = self._read_counters()
            for key, delta in pending.items():
                counters[key] = counters.get(key, 0) + delta
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-stats-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(counters, handle)
            os.replace(tmp_path, self._stats_path())
        except OSError:
            pass

    def _quarantine(self, key: str) -> None:
        """Park a corrupt entry under ``quarantine/`` for post-mortem.

        Moving (not deleting) keeps the evidence while guaranteeing the
        bad bytes can never be loaded again; a failed move falls back
        to best-effort deletion so the corrupt entry cannot keep
        resurfacing as an invalid load.  A vanished source is another
        process winning the same quarantine race (or replacing the
        entry with a good one) — not an event worth counting twice.
        """
        source = self._path(key)
        try:
            pen = os.path.join(self.directory, _QUARANTINE_DIR)
            os.makedirs(pen, exist_ok=True)
            os.replace(source, os.path.join(pen, key + _SUFFIX))
        except FileNotFoundError:
            return
        except OSError:
            try:
                os.unlink(source)
            except OSError:
                return
        self._bump(quarantined=1)

    # -- load / store --------------------------------------------------------
    def load(self, key: str) -> Optional[object]:
        """The cached object for ``key``, or None on any failure.

        Every read re-verifies the entry's envelope: magic header,
        then SHA-256 of the payload against the stored digest, then
        unpickling.  A failure at any step quarantines the entry and
        counts as an invalid miss.
        """
        try:
            with open(self._path(key), "rb") as handle:
                blob = handle.read()
        except OSError:
            self._bump(misses=1)
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("missing cache magic")
            header_end = blob.index(b"\n", len(_MAGIC))
            digest = blob[len(_MAGIC):header_end].decode("ascii")
            payload = blob[header_end + 1:]
            if hashlib.sha256(payload).hexdigest() != digest:
                raise ValueError("cache payload digest mismatch")
            value = pickle.loads(payload)
        except Exception:
            # Missing magic (foreign/legacy file), digest mismatch
            # (bit rot, torn write), or an unpicklable payload: an
            # *invalid* entry, counted apart from plain misses and
            # moved out of the way.  pickle can raise nearly anything
            # on arbitrary bytes, so no narrower list is safe.
            self._bump(misses=1, invalid=1)
            self._quarantine(key)
            return None
        self._bump(hits=1)
        return value

    def store(self, key: str, value: object) -> bool:
        """Atomically persist ``value`` under ``key``; False on failure.

        Safe for concurrent writers sharing one cache directory (the
        cluster's replicas all point here): each writer stages into its
        own ``mkstemp`` file, fsyncs it, then publishes with a single
        ``os.replace`` — so a reader only ever sees either the old
        complete entry or the new complete entry, never a torn write,
        and a crash mid-store leaves at worst an orphaned temp file.
        Two processes storing the same fingerprint race benignly: runs
        are deterministic, both envelopes are bit-identical, and the
        last rename wins.
        """
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_MAGIC)
                    handle.write(digest.encode("ascii"))
                    handle.write(b"\n")
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            self._bump(stores=1)
            return True
        except (OSError, pickle.PicklingError, TypeError):
            return False

    # -- maintenance ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entry count, total size, and persisted effectiveness counters."""
        self.flush_stats()
        entries = list(self._entries())
        total = 0
        for path in entries:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        stats: Dict[str, object] = {
            "directory": self.directory,
            "entries": len(entries),
            "bytes": total,
        }
        stats.update(self._read_counters())
        return stats

    def clear(self) -> int:
        """Delete every entry (including quarantined ones) and reset
        counters; returns the number of live entries removed."""
        self._pending = {}
        self._pending_ops = 0
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        pen = os.path.join(self.directory, _QUARANTINE_DIR)
        try:
            for name in os.listdir(pen):
                try:
                    os.unlink(os.path.join(pen, name))
                except OSError:
                    pass
        except OSError:
            pass
        try:
            os.unlink(self._stats_path())
        except OSError:
            pass
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict oldest entries (by mtime) until the cache fits
        ``max_bytes``; returns the number evicted.

        Eviction order is access recency where the filesystem records
        it (``load`` re-reads bump atime, not mtime, so this is
        write-recency LRU: the entries least recently *produced* go
        first — deterministic and good enough for a result cache).
        """
        entries = []
        total = 0
        for path in self._entries():
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
            total += info.st_size
        entries.sort()
        evicted = 0
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            self._bump(evictions=evicted)
        return evicted
