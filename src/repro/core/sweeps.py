"""Parameter-sweep utilities (the machinery behind the ablations).

The ablation benchmarks all share one shape: vary one microarchitecture
or compiler parameter, re-evaluate a workload, and report how the
transformation's benefit responds.  This module makes that a public,
composable API:

    >>> from repro.core.sweeps import sweep_platform_field
    >>> rows = sweep_platform_field("hmmsearch", "l1_hit_int", [1, 2, 3, 5])
    >>> [(row.value, round(row.speedup, 3)) for row in rows]

so downstream users can run their own sensitivity studies over any
:class:`repro.cpu.PlatformConfig` field or
:class:`repro.lang.CompilerOptions` field without copying harness code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.pipeline import evaluate_workload
from repro.cpu.platforms import ALPHA_21264, PlatformConfig
from repro.workloads.registry import WorkloadSpec, get_workload


@dataclass
class SweepPoint:
    """One point of a sweep: the varied value and both runtimes."""

    field: str
    value: object
    original_cycles: int
    transformed_cycles: int

    @property
    def speedup(self) -> float:
        if not self.transformed_cycles:
            return 0.0
        return self.original_cycles / self.transformed_cycles - 1.0


def _resolve(workload) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    return get_workload(workload)


def _platform_point(task) -> SweepPoint:
    """Worker: evaluate one platform-field sweep point.

    Module-level (and spec-by-name) so sweep points can be farmed out to
    worker processes; called inline for serial sweeps.
    """
    name, field, value, base, scale, seed = task
    spec = get_workload(name)
    platform = dataclasses.replace(
        base, name=f"{base.name}[{field}={value}]", **{field: value}
    )
    if field == "int_registers":
        platform = dataclasses.replace(platform, float_registers=value)
    evaluation = evaluate_workload(spec, platform, scale=scale, seed=seed)
    return SweepPoint(
        field=field,
        value=value,
        original_cycles=evaluation.original.cycles,
        transformed_cycles=evaluation.transformed.cycles,
    )


def _compiler_point(task) -> SweepPoint:
    """Worker: evaluate one compiler-flag sweep point (both versions)."""
    name, field, value, platform, scale, seed = task
    from repro.cpu.platforms import make_timing_model
    from repro.exec.backends import make_interpreter
    from repro.lang.compiler import compile_source

    spec = get_workload(name)

    def timed(transformed: bool) -> int:
        options = platform.compiler_options()
        setattr(options, field, value)
        program = compile_source(
            spec.source(transformed), f"{spec.name}-{field}-{value}", options
        )
        model = make_timing_model(platform)
        make_interpreter(program, spec.dataset(scale, seed)).run(consumers=(model,))
        return model.result().cycles

    return SweepPoint(
        field=field,
        value=value,
        original_cycles=timed(False),
        transformed_cycles=timed(True),
    )


def _run_points(worker, tasks, jobs: int, runner=None) -> List[SweepPoint]:
    from repro.core.parallel import ParallelRunner

    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    return runner.map(worker, tasks)


def sweep_platform_field(
    workload,
    field: str,
    values: Sequence[object],
    base: PlatformConfig = ALPHA_21264,
    scale: str = "small",
    seed: int = 0,
    jobs: int = 1,
    runner=None,
) -> List[SweepPoint]:
    """Evaluate original vs transformed while varying one platform field.

    ``field`` must be a :class:`PlatformConfig` dataclass field (e.g.
    ``l1_hit_int``, ``mispredict_penalty``, ``int_registers``,
    ``issue_width``).  Fields that feed the *compiler* (register count,
    cmov availability, predication) take effect there too, because each
    point recompiles with the modified platform's options.

    ``jobs > 1`` evaluates the points across worker processes; each
    point is independent and results keep ``values`` order, so output
    is identical to the serial sweep.
    """
    spec = _resolve(workload)
    names = {f.name for f in dataclasses.fields(PlatformConfig)}
    if field not in names:
        raise ValueError(
            f"unknown platform field {field!r}; expected one of {sorted(names)}"
        )
    tasks = [(spec.name, field, value, base, scale, seed) for value in values]
    return _run_points(_platform_point, tasks, jobs, runner)


def sweep_compiler_flag(
    workload,
    field: str,
    values: Sequence[object],
    platform: PlatformConfig = ALPHA_21264,
    scale: str = "small",
    seed: int = 0,
    jobs: int = 1,
    runner=None,
) -> List[SweepPoint]:
    """Vary one :class:`CompilerOptions` field for both code versions.

    Useful fields: ``alias_model`` ('may-alias' vs 'restrict'),
    ``enable_cmov``, ``enable_hoist``, ``enable_schedule``,
    ``unroll_factor``, ``opt_level``.  ``jobs`` works as in
    :func:`sweep_platform_field`.
    """
    spec = _resolve(workload)
    probe = platform.compiler_options()
    if not hasattr(probe, field):
        raise ValueError(f"unknown compiler option {field!r}")
    tasks = [(spec.name, field, value, platform, scale, seed) for value in values]
    return _run_points(_compiler_point, tasks, jobs, runner)


def render_sweep(points: Iterable[SweepPoint], title: Optional[str] = None) -> str:
    """ASCII table of a sweep's results."""
    from repro.core.reporting import format_table, pct

    points = list(points)
    header_field = points[0].field if points else "value"
    return format_table(
        [header_field, "orig cycles", "xform cycles", "speedup"],
        [
            [p.value, p.original_cycles, p.transformed_cycles, pct(p.speedup)]
            for p in points
        ],
        title=title,
    )
