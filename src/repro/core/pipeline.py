"""End-to-end acceleration pipeline (Sections 4-5).

For one workload and one platform: compile the original and the
load-transformed sources with the platform's baseline -O3 options
(register budget, conditional-move availability), execute both on the
platform's timing model over the *same* dataset, and report cycles and
speedup.  :func:`harmonic_mean_speedup` aggregates per Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.cpu.platforms import PlatformConfig, make_timing_model
from repro.cpu.ooo import TimingResult
from repro.exec.backends import make_interpreter
from repro.workloads.registry import WorkloadSpec


@dataclass
class EvaluationResult:
    """Original vs load-transformed timing on one platform."""

    workload: str
    platform: str
    original: TimingResult
    transformed: TimingResult
    clock_ghz: float

    @property
    def speedup(self) -> float:
        """Fractional speedup: 0.25 means 25% faster, as in Figure 9."""
        if self.transformed.cycles == 0:
            return 0.0
        return self.original.cycles / self.transformed.cycles - 1.0

    @property
    def original_seconds(self) -> float:
        return self.original.seconds(self.clock_ghz)

    @property
    def transformed_seconds(self) -> float:
        return self.transformed.seconds(self.clock_ghz)


def run_timed(
    spec: WorkloadSpec,
    platform: PlatformConfig,
    transformed: bool,
    scale: str = "medium",
    seed: int = 0,
    alias_model: str = "may-alias",
) -> TimingResult:
    """Compile one variant for ``platform`` and time it."""
    options = platform.compiler_options(alias_model=alias_model)
    program = spec.program(transformed=transformed, options=options)
    model = make_timing_model(platform)
    interp = make_interpreter(program, spec.dataset(scale, seed))
    interp.run(consumers=(model,))
    return model.result()


def evaluate_workload(
    spec: WorkloadSpec,
    platform: PlatformConfig,
    scale: str = "medium",
    seed: int = 0,
    alias_model: str = "may-alias",
) -> EvaluationResult:
    """Time original and transformed variants on one platform."""
    original = run_timed(spec, platform, False, scale, seed, alias_model)
    transformed = run_timed(spec, platform, True, scale, seed, alias_model)
    return EvaluationResult(
        workload=spec.name,
        platform=platform.name,
        original=original,
        transformed=transformed,
        clock_ghz=platform.clock_ghz,
    )


def harmonic_mean_speedup(speedups: Iterable[float]) -> float:
    """Harmonic-mean speedup as the paper reports it (Figure 9).

    Speedups are fractional (0.254 = 25.4%); the harmonic mean is taken
    over the speedup *factors* (1 + s) and converted back.
    """
    factors = [1.0 + s for s in speedups]
    if not factors:
        return 0.0
    return len(factors) / sum(1.0 / f for f in factors) - 1.0


def evaluate_all(
    specs: Iterable[WorkloadSpec],
    platforms: Iterable[PlatformConfig],
    scale: str = "medium",
    seed: int = 0,
) -> Dict[str, List[EvaluationResult]]:
    """Table 8: every amenable workload on every platform.

    Returns ``{platform short name: [EvaluationResult per workload]}``.
    """
    out: Dict[str, List[EvaluationResult]] = {}
    for platform in platforms:
        rows = [
            evaluate_workload(spec, platform, scale=scale, seed=seed)
            for spec in specs
        ]
        out[platform.name] = rows
    return out
