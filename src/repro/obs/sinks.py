"""Structured telemetry sinks: JSONL export, reader, and tree summary.

One trace file holds everything a run emitted, one JSON object per
line, discriminated by ``"type"``:

* ``{"type": "span", ...}`` — a finished :class:`~repro.obs.tracing.
  SpanRecord` (name, ids, start_unix, duration_s, status, attrs);
* ``{"type": "metric", "name": ..., "value": ...}`` — one registry
  instrument (counters/gauges are scalars, histograms are dicts).

JSONL keeps the file append-friendly and greppable;
:func:`read_trace_jsonl` round-trips it back into records, and
:func:`render_summary` renders the span tree with durations the way
``repro trace summary`` shows it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.tracing import SpanRecord

__all__ = [
    "read_trace_jsonl",
    "render_summary",
    "write_trace_jsonl",
]


def write_trace_jsonl(
    path: str,
    records: Iterable[SpanRecord],
    metrics_snapshot: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write spans (and optionally metrics) to ``path``; returns lines."""
    lines = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            lines += 1
        for name, value in sorted((metrics_snapshot or {}).items()):
            handle.write(
                json.dumps(
                    {"type": "metric", "name": name, "value": value},
                    sort_keys=True,
                )
                + "\n"
            )
            lines += 1
    return lines


def read_trace_jsonl(path: str) -> Tuple[List[SpanRecord], Dict[str, Any]]:
    """Parse a trace file back into (span records, metrics dict).

    Unknown line types are skipped, so the format can grow without
    breaking old readers.
    """
    spans: List[SpanRecord] = []
    metric_values: Dict[str, Any] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("type")
            if kind == "span":
                spans.append(SpanRecord.from_dict(data))
            elif kind == "metric":
                metric_values[data["name"]] = data.get("value")
    return spans, metric_values


# ---------------------------------------------------------------------------
# Human summary
# ---------------------------------------------------------------------------


def _format_attrs(attrs: Mapping[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    return f"{seconds * 1e3:8.3f} ms"


def render_summary(
    spans: Iterable[SpanRecord],
    metric_values: Optional[Mapping[str, Any]] = None,
) -> str:
    """Indented span tree (durations, status, attrs) plus metrics."""
    spans = list(spans)
    by_parent: Dict[Optional[str], List[SpanRecord]] = {}
    ids = {record.span_id for record in spans}
    for record in spans:
        # A parent that was never shipped (e.g. a filtered file) makes
        # the child a root rather than invisible.
        parent = record.parent_id if record.parent_id in ids else None
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: (r.start_unix, r.span_id))

    lines: List[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        status = "" if record.status == "ok" else f"  !! {record.status}"
        if record.error:
            status += f" ({record.error})"
        lines.append(
            f"{_format_duration(record.duration_s)}  "
            f"{'  ' * depth}{record.name}"
            f"{_format_attrs(record.attrs)}{status}"
        )
        for child in by_parent.get(record.span_id, []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    if not lines:
        lines.append("(no spans)")

    if metric_values:
        lines.append("")
        lines.append("metrics:")
        width = max(len(name) for name in metric_values)
        for name in sorted(metric_values):
            value = metric_values[name]
            if isinstance(value, dict):
                value = " ".join(
                    f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in value.items()
                    if v is not None
                )
            lines.append(f"  {name:<{width}}  {value}")
    return "\n".join(lines)
