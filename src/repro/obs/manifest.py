"""Run provenance manifests.

A manifest is a small JSON document written next to every
characterization result and ``BENCH_*.json`` answering "what exactly
produced this file?": the run's config fingerprint (the **same**
fingerprint :mod:`repro.core.runcache` keys the run cache with — one
source of truth, so a manifest and a cache entry can never disagree
about identity), the git revision, interpreter and platform versions,
the dataset seed, the tool list, and the run's timings.

The paper's tables are only comparable because every number states its
configuration (Table 3's cache, Table 7's platforms); manifests apply
the same discipline to our own artifacts so a BENCH json from three
PRs ago is still attributable.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Mapping, Optional, Sequence

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_revision",
    "manifest_path_for",
    "run_manifest",
    "write_manifest",
]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

#: The standard characterization tool set, in attach order.
STANDARD_TOOLS = ("mix", "coverage", "cache", "sequences")


def git_revision(root: Optional[str] = None) -> Optional[str]:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(
    *,
    kind: str,
    fingerprint: Optional[str] = None,
    config: Optional[Mapping[str, Any]] = None,
    tools: Optional[Sequence[str]] = None,
    timings: Optional[Mapping[str, float]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict.

    ``kind`` names what the manifest describes (``"characterization"``,
    ``"benchmark"``, ...); ``config`` is the flat run configuration
    (workload, scale, seed, jobs, ...); ``timings`` maps phase names to
    seconds.  Environment provenance (git rev, python, platform) is
    filled in here.
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created_unix": time.time(),
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "hostname_pid": f"{platform.node()}:{os.getpid()}",
    }
    if fingerprint is not None:
        manifest["fingerprint"] = fingerprint
    if config is not None:
        manifest["config"] = dict(config)
    if tools is not None:
        manifest["tools"] = list(tools)
    if timings is not None:
        manifest["timings_s"] = {k: float(v) for k, v in timings.items()}
    if extra:
        manifest.update(extra)
    return manifest


def run_manifest(
    name: str,
    scale: str,
    seed: int,
    max_instructions: Optional[int] = None,
    timings: Optional[Mapping[str, float]] = None,
    backend: Optional[str] = None,
    batch: Optional[int] = None,
) -> Dict[str, Any]:
    """Manifest for one characterization run of a registered workload.

    The fingerprint is computed by :func:`repro.core.runcache.
    workload_fingerprint` — identical inputs to the run cache's key, so
    the manifest of a run and the cache entry that stores it always
    carry the same identity.  ``backend`` records the execution engine
    (resolved from the environment when not given) and ``batch`` the
    effective lockstep batch size when the batched tier ran this run
    (``1`` for a degenerate single-lane batch, absent for the scalar
    backends); the fingerprint deliberately excludes both, since every
    backend — and every batch lane — is bit-identical.
    """
    from repro.core.runcache import workload_fingerprint
    from repro.exec.backends import resolve_backend
    from repro.exec.interpreter import DEFAULT_MAX_INSTRUCTIONS

    if max_instructions is None:
        max_instructions = DEFAULT_MAX_INSTRUCTIONS
    config = {
        "workload": name,
        "scale": scale,
        "seed": seed,
        "max_instructions": max_instructions,
        "backend": resolve_backend(backend),
    }
    if batch is not None:
        config["batch"] = int(batch)
    return build_manifest(
        kind="characterization",
        fingerprint=workload_fingerprint(name, scale, seed, max_instructions),
        config=config,
        tools=STANDARD_TOOLS,
        timings=timings,
    )


def manifest_path_for(result_path: str) -> str:
    """Sibling manifest path for a result file (``x.json`` → ``x.manifest.json``)."""
    base, ext = os.path.splitext(result_path)
    if ext == ".json":
        return base + ".manifest.json"
    return result_path + ".manifest.json"


def write_manifest(path: str, manifest: Mapping[str, Any]) -> str:
    """Persist a manifest as pretty-printed JSON; returns ``path``."""
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
