"""Trace-context propagation: one request identity, end to end.

A request entering the characterization service is minted a **request
ID** at the HTTP door (or adopts the client-supplied
``X-Repro-Request-Id`` header) and carries it through admission, the
batcher's single-flight/coalescing machinery, the engine map, and the
supervised worker pool — so every span a request caused, in every
process it touched, is tagged with the originating ID, and every
response envelope echoes it.

The mechanism is a small thread-local **ambient context stack**:

* :func:`use` installs a :class:`TraceContext` (or a plain attrs dict)
  for the duration of a ``with`` block;
* :func:`current_attrs` returns the merged attributes of the stack —
  :meth:`repro.obs.tracing.Tracer.span` folds them into every span
  opened while the context is active;
* :class:`~repro.core.parallel.ParallelRunner` captures the ambient
  attrs at dispatch time and ships them to the worker process with the
  task, where :func:`use` re-installs them around the task body — so
  worker-side spans (adopted back by the parent) carry the same
  request ID without the worker entry points knowing anything about
  requests.

Context is deliberately independent of the telemetry on/off switch:
request IDs must flow into response envelopes and access logs even
when span collection is disabled, so the stack is always live (it is a
few dict operations per request, not per instruction).
"""

from __future__ import annotations

import binascii
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Union

__all__ = [
    "REQUEST_ID_HEADER",
    "TraceContext",
    "current",
    "current_attrs",
    "mint_request_id",
    "use",
    "valid_request_id",
]

#: The HTTP header the service door honors and echoes.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Ceiling on accepted client-supplied request IDs.
_MAX_ID_LEN = 128


@dataclass(frozen=True)
class TraceContext:
    """One request's identity as it travels through the service.

    ``request_id`` is minted at the door (or supplied by the client);
    ``coalesced_into`` is set on a follower request that single-flighted
    onto an existing in-flight run, naming the **leader** request it
    joined — so the access log can reconstruct which requests shared
    one engine run.
    """

    request_id: str
    coalesced_into: Optional[str] = None

    def attrs(self) -> Dict[str, Any]:
        """The context as span attributes."""
        attrs: Dict[str, Any] = {"request_id": self.request_id}
        if self.coalesced_into is not None:
            attrs["coalesced_into"] = self.coalesced_into
        return attrs


_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def mint_request_id() -> str:
    """A fresh, process-unique request ID (``req-`` + 16 hex chars)."""
    return "req-" + binascii.hexlify(os.urandom(8)).decode()


def valid_request_id(value: Any) -> bool:
    """Whether a client-supplied ID is safe to echo and log: printable
    ASCII, no whitespace/control characters, bounded length."""
    if not isinstance(value, str) or not value or len(value) > _MAX_ID_LEN:
        return False
    return all(33 <= ord(ch) <= 126 for ch in value)


@contextmanager
def use(
    context: Optional[Union[TraceContext, Dict[str, Any]]]
) -> Iterator[Optional[Union[TraceContext, Dict[str, Any]]]]:
    """Install ``context`` as this thread's ambient trace context.

    Accepts a :class:`TraceContext`, a plain attrs dict (the picklable
    form shipped to worker processes), or None (no-op, so call sites
    can wrap unconditionally).
    """
    if context is None:
        yield None
        return
    stack = _stack()
    stack.append(context)
    try:
        yield context
    finally:
        if stack and stack[-1] is context:
            stack.pop()
        elif context in stack:  # out-of-order exit: drop through to it
            while stack and stack.pop() is not context:
                pass


def current() -> Optional[TraceContext]:
    """The innermost ambient :class:`TraceContext`, or None."""
    for entry in reversed(_stack()):
        if isinstance(entry, TraceContext):
            return entry
    return None


def current_attrs() -> Dict[str, Any]:
    """The merged attributes of the ambient context stack (outermost
    first, so inner contexts win on key collisions); ``{}`` when no
    context is active."""
    stack = _stack()
    if not stack:
        return {}
    merged: Dict[str, Any] = {}
    for entry in stack:
        if isinstance(entry, TraceContext):
            merged.update(entry.attrs())
        else:
            merged.update(entry)
    return merged
