"""Lightweight tracing: nested spans with monotonic timings.

A :class:`Span` measures one region of work (an interpreter run, a
characterization pass, a worker task) with ``time.perf_counter``.
Spans nest: entering a span makes it the parent of any span opened
inside it on the same thread, so a finished trace reconstructs the
call tree of a run — which phase dominated, what ran inside what —
exactly the self-observation the paper applies to the BioPerf programs
with ATOM, turned on our own pipeline.

Telemetry is **off by default** and the off path is as close to free
as Python allows: :func:`span` returns a shared no-op singleton after
one global check, allocates nothing, and records nothing.  Code can
therefore be instrumented unconditionally; only runs that call
:func:`enable` (or the CLI's ``--trace``) pay for collection.

Worker processes capture spans with :func:`begin_worker_capture` /
:func:`end_worker_capture` and ship the plain-dict records back to the
parent, which re-roots them with :meth:`Tracer.adopt` — timings stay
valid because each record carries its own start/duration.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import context as _context
from repro.obs import flightrec as _flightrec

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "begin_worker_capture",
    "disable",
    "enable",
    "enabled",
    "end_worker_capture",
    "get_tracer",
    "span",
]


@dataclass
class SpanRecord:
    """One finished span, as plain data (JSON- and pickle-friendly)."""

    name: str
    span_id: str
    parent_id: Optional[str]
    start_unix: float
    duration_s: float
    status: str  # "ok" | "error"
    attrs: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    pid: int = 0

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
            "pid": self.pid,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_unix=data["start_unix"],
            duration_s=data["duration_s"],
            status=data.get("status", "ok"),
            attrs=dict(data.get("attrs") or {}),
            error=data.get("error"),
            pid=int(data.get("pid", 0)),
        )


class Span:
    """A live measured region; use as a context manager.

    Exiting normally closes the span with status ``"ok"``; exiting via
    an exception closes it with status ``"error"`` and the exception
    summary in ``error`` (the exception still propagates).
    """

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "start_unix",
        "_start",
        "_closed",
    )

    def __init__(self, tracer: "Tracer", name: str, parent_id: Optional[str], attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_unix = 0.0
        self._start = 0.0
        self._closed = False

    def set_attr(self, **attrs: Any) -> "Span":
        """Attach or update attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_unix = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._pop(self)
        if not self._closed:
            self._closed = True
            self._tracer._finish(
                SpanRecord(
                    name=self.name,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    start_unix=self.start_unix,
                    duration_s=duration,
                    status="error" if exc_type is not None else "ok",
                    attrs=self.attrs,
                    error=(
                        f"{exc_type.__name__}: {exc}" if exc_type is not None else None
                    ),
                    pid=os.getpid(),
                )
            )
        return False  # never swallow exceptions


class _NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled."""

    __slots__ = ()

    def set_attr(self, **_attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans; tracks the current span per thread."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- span lifecycle -----------------------------------------------------
    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._ids):x}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span whose parent is the thread's current span.

        Ambient trace-context attributes (:func:`repro.obs.context.
        current_attrs` — the request ID threaded through the serving
        path) are folded in under explicit ``attrs``, so every span a
        request causes is tagged with its originating request ID
        without call sites knowing about requests.
        """
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        ambient = _context.current_attrs()
        if ambient:
            ambient.update(attrs)
            attrs = ambient
        return Span(self, name, parent_id, attrs)

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span_obj: Span) -> None:
        self._stack().append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        elif span_obj in stack:  # out-of-order close: drop through to it
            while stack and stack.pop() is not span_obj:
                pass

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)
        recorder = _flightrec.get_recorder()
        if recorder is not None:
            recorder.note_span(record.to_dict())

    # -- collection ---------------------------------------------------------
    def drain(self) -> List[SpanRecord]:
        """All finished records so far; clears the buffer."""
        with self._lock:
            records, self.records = self.records, []
        return records

    def adopt(
        self,
        records: Iterable[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> int:
        """Ingest span records captured in another process.

        Records without a parent (worker roots) are re-parented under
        ``parent_id`` (default: this thread's current span) so the
        worker subtree hangs off the dispatching span.
        """
        if parent_id is None:
            parent_id = self.current_span_id()
        adopted = 0
        for data in records:
            record = SpanRecord.from_dict(data)
            if record.parent_id is None:
                record.parent_id = parent_id
            self._finish(record)
            adopted += 1
        return adopted


# ---------------------------------------------------------------------------
# Global switch
# ---------------------------------------------------------------------------

_tracer: Optional[Tracer] = None


def enable() -> Tracer:
    """Turn tracing on (idempotent); returns the active tracer."""
    global _tracer
    if _tracer is None:
        _tracer = Tracer()
    return _tracer


def disable() -> None:
    """Turn tracing off and drop any collected records."""
    global _tracer
    _tracer = None


def enabled() -> bool:
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    return _tracer


def span(name: str, **attrs: Any):
    """A span under the active tracer, or the no-op span when off."""
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


# ---------------------------------------------------------------------------
# Worker-process capture
# ---------------------------------------------------------------------------


def begin_worker_capture() -> Tracer:
    """Install a fresh tracer in a worker process.

    A forked worker inherits the parent's tracer *including records the
    parent already collected*; shipping those back would duplicate them.
    This swaps in an empty tracer so the worker captures only its own
    spans.
    """
    global _tracer
    _tracer = Tracer()
    return _tracer


def end_worker_capture() -> List[Dict[str, Any]]:
    """Finish worker capture; returns the records as plain dicts."""
    global _tracer
    tracer, _tracer = _tracer, None
    if tracer is None:
        return []
    return [record.to_dict() for record in tracer.drain()]
