"""Metrics registry: counters, gauges, and histograms.

Instrumented code asks the registry for a named instrument and updates
it — ``metrics().counter("runcache.hits").inc()`` — exactly the
counter style the paper's ATOM tools use for instruction and event
tallies, applied to our own pipeline (instructions retired, events
dispatched vs. suppressed, cache hits/misses, worker utilization).

Like :mod:`repro.obs.tracing`, the registry has a **zero-cost no-op
mode**: when telemetry is off, :func:`metrics` returns a singleton
registry whose instruments discard every update, so hot paths can be
instrumented unconditionally.  Naming convention: dotted lowercase,
``<subsystem>.<thing>`` (see ``docs/observability.md``).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Mapping, Optional, Union

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "labeled",
    "metrics",
]


def labeled(name: str, **labels: Any) -> str:
    """The canonical label-encoded metric name: ``name{k="v",...}``.

    Labels are sorted by key so the same label set always produces the
    same instrument name; values are stringified.  The Prometheus
    exposition (:mod:`repro.obs.prometheus`) splits this form back into
    a metric family plus label set.
    """
    if not labels:
        return name
    body = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-set value (e.g. worker count, cache size in bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value


#: Retained samples per histogram before deterministic decimation.
_RESERVOIR_CAP = 4096

#: Fixed exponential bucket upper bounds (milliseconds for latency
#: histograms): 0.25 ms … ~33 s, doubling.  Fixed bounds — identical in
#: every process and across restarts — are what make bucket counts
#: mergeable across workers (:meth:`MetricsRegistry.absorb`) and
#: scrapeable as cumulative ``le`` series by Prometheus.
DEFAULT_BUCKETS = tuple(0.25 * 2**i for i in range(18))


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/buckets).

    Memory is bounded two ways.  Fixed exponential **buckets**
    (:data:`DEFAULT_BUCKETS` by default) count observations at
    ``O(len(buckets))`` space forever — these are exact, mergeable
    across processes, and feed the Prometheus exposition.  A bounded
    **reservoir** of raw samples additionally supports
    :meth:`quantile` (p50/p99 latency for the request server): when it
    fills it is decimated — every other sample dropped, the
    keep-stride doubled — so the quantile estimate keeps covering the
    whole observation history at fixed cost.  Decimation is
    deterministic: identical observation sequences yield identical
    quantiles.
    """

    __slots__ = (
        "count",
        "total",
        "minimum",
        "maximum",
        "bounds",
        "bucket_counts",
        "_samples",
        "_stride",
    )

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bounds = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.bounds)
        self._samples: list = []
        self._stride = 1

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        # Values above the last bound land only in +Inf (i.e. count).
        if self.count % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= _RESERVOIR_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile of the retained samples (q in [0, 1])."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }
        if any(self.bucket_counts):
            # Per-bucket (non-cumulative) counts, keyed by the upper
            # bound; the Prometheus renderer accumulates them into
            # cumulative ``le`` series.  Zero buckets are elided.
            snap["buckets"] = {
                repr(bound): count
                for bound, count in zip(self.bounds, self.bucket_counts)
                if count
            }
        if self._samples:
            # Quantiles are per-process: absorb() folds only the
            # aggregate and bucket fields, never another process's
            # reservoir.
            snap["p50"] = self.quantile(0.50)
            snap["p99"] = self.quantile(0.99)
        return snap


class MetricsRegistry:
    """Named instruments, created on first use.

    A name maps to exactly one instrument kind for the registry's
    lifetime; asking for the same name with a different kind raises,
    which catches naming collisions early.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, cls())
        if type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(labeled(name, **labels), Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(labeled(name, **labels), Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(labeled(name, **labels), Histogram)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as plain data, sorted by name."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def absorb(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker's counter/histogram snapshot into this registry.

        Counters add; histograms combine count/sum/min/max and fold
        bucket counts (fixed bounds make the per-bucket counts directly
        addable); gauges take the worker's last value.  Used when a
        pool worker ships its metrics back with its results.
        """
        for name, value in snapshot.items():
            if isinstance(value, dict) and "count" in value:
                hist = self.histogram(name)
                hist.count += int(value.get("count", 0))
                hist.total += float(value.get("sum", 0.0))
                index_of = {
                    repr(bound): i for i, bound in enumerate(hist.bounds)
                }
                for bound, bucket_count in (value.get("buckets") or {}).items():
                    index = index_of.get(str(bound))
                    if index is not None:
                        hist.bucket_counts[index] += int(bucket_count)
                for key, pick in (("min", min), ("max", max)):
                    other = value.get(key)
                    if other is None:
                        continue
                    mine = hist.minimum if key == "min" else hist.maximum
                    best = other if mine is None else pick(mine, other)
                    if key == "min":
                        hist.minimum = best
                    else:
                        hist.maximum = best
            elif isinstance(value, int):
                self.counter(name).inc(value)
            else:
                self.gauge(name).set(value)


# ---------------------------------------------------------------------------
# No-op mode
# ---------------------------------------------------------------------------


class _NoopInstrument:
    """Discards every update; stands in for all instrument kinds."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def snapshot(self):
        return 0


class _NoopRegistry:
    """Registry whose instruments are all the shared no-op."""

    __slots__ = ()

    def counter(self, name: str, **labels: Any) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def absorb(self, snapshot: Mapping[str, Any]) -> None:
        pass


_NOOP_INSTRUMENT = _NoopInstrument()
_NOOP_REGISTRY = _NoopRegistry()

_registry: Optional[MetricsRegistry] = None


def enable() -> MetricsRegistry:
    """Turn metrics on (idempotent); returns the live registry."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def disable() -> None:
    global _registry
    _registry = None


def enabled() -> bool:
    return _registry is not None


def get_registry() -> Optional[MetricsRegistry]:
    return _registry


def metrics():
    """The live registry, or the shared no-op registry when off."""
    return _registry if _registry is not None else _NOOP_REGISTRY


def begin_worker_capture() -> MetricsRegistry:
    """Install a fresh registry in a worker process.

    A forked worker inherits the parent's registry *including counts
    the parent already accumulated*; shipping those back would double
    them when the parent absorbs the snapshot.  This swaps in an empty
    registry so the worker reports only its own deltas.
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry


def end_worker_capture() -> Dict[str, Any]:
    """Finish worker capture; returns the snapshot and disables."""
    global _registry
    registry, _registry = _registry, None
    return registry.snapshot() if registry is not None else {}
