"""Structured access log: one JSONL record per served request.

Every request the characterization service resolves — fast-path hit,
batched run, coalesced follower, deadline miss, worker failure, door
rejection — produces exactly one record:

    {"type": "access", "ts": ..., "request_id": "req-...",
     "kind": "characterize", "workload": "hmmsearch", "id": "<fp>",
     "status": 200, "outcome": "ok", "cached": false,
     "coalesced_into": null, "batch_size": 3, "backend": "compiled",
     "stages_ms": {"queue": 1.2, "batch": 0.1, "exec": 40.3,
                   "total": 41.8}}

``stages_ms`` decomposes the request's life: **queue** (submission →
the batcher popped its flight), **batch** (pop → engine dispatch),
**exec** (the engine map), **total** (submission → resolution).

The log keeps a bounded in-memory tail (for ``/healthz``, the flight
recorder, and tests) and optionally appends JSONL to a file that
``repro obs tail`` can follow.  File writes are buffered and flushed
every ``flush_every`` records — or after ``flush_interval_s`` seconds,
so a low-traffic server's records still reach a live tail promptly —
and :meth:`flush`/:meth:`close` force the remainder out.
"""

from __future__ import annotations

import json
import threading
import time
from collections import defaultdict, deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "AccessLog",
    "read_access_jsonl",
    "render_tail",
    "summarize_access_records",
]

#: Records remembered in memory.
_DEFAULT_TAIL = 256

#: File-buffer flush cadence (records).
_DEFAULT_FLUSH_EVERY = 64

#: Time-based flush floor (seconds) between buffered writes.
_DEFAULT_FLUSH_INTERVAL_S = 1.0


class AccessLog:
    """Thread-safe request log: bounded in-memory tail + JSONL file."""

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = _DEFAULT_TAIL,
        flush_every: int = _DEFAULT_FLUSH_EVERY,
        flush_interval_s: float = _DEFAULT_FLUSH_INTERVAL_S,
    ):
        self.path = path
        self._tail: "deque[Dict[str, Any]]" = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._handle = open(path, "a") if path else None
        self._flush_every = max(1, int(flush_every))
        self._flush_interval_s = float(flush_interval_s)
        self._last_flush = time.monotonic()
        self._pending = 0
        self._count = 0

    def log(self, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns it (with ``type``/``ts`` stamped)."""
        record = {"type": "access", "ts": time.time()}
        record.update(fields)
        with self._lock:
            self._tail.append(record)
            self._count += 1
            if self._handle is not None:
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._pending += 1
                now = time.monotonic()
                if (
                    self._pending >= self._flush_every
                    or now - self._last_flush >= self._flush_interval_s
                ):
                    self._handle.flush()
                    self._pending = 0
                    self._last_flush = now
        return record

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` records (default: the whole tail)."""
        with self._lock:
            records = list(self._tail)
        return records if n is None else records[-n:]

    @property
    def count(self) -> int:
        """Total records logged over the log's lifetime."""
        return self._count

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._pending = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


# ---------------------------------------------------------------------------
# Reading and summarizing (the `repro obs tail` view)
# ---------------------------------------------------------------------------


def read_access_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse an access-log file; unknown line types are skipped.  A
    missing file reads as empty — ``repro obs tail --follow`` may start
    before the server writes its first record."""
    records: List[Dict[str, Any]] = []
    try:
        handle = open(path)
    except FileNotFoundError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if isinstance(data, dict) and data.get("type") == "access":
                records.append(data)
    return records


def _percentile(ordered: List[float], q: float) -> float:
    return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]


def summarize_access_records(
    records: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Per-workload latency/error rollup of access records.

    Returns one row per workload (sorted by request count, descending):
    requests, errors, error_rate, p50_ms, p99_ms, max_ms — the live SLO
    view ``repro obs tail`` renders.
    """
    by_workload: Dict[str, Dict[str, Any]] = defaultdict(
        lambda: {"requests": 0, "errors": 0, "latencies": []}
    )
    for record in records:
        workload = record.get("workload") or "-"
        entry = by_workload[workload]
        entry["requests"] += 1
        status = record.get("status")
        if isinstance(status, int) and status >= 400:
            entry["errors"] += 1
        stages = record.get("stages_ms") or {}
        total = stages.get("total")
        if isinstance(total, (int, float)):
            entry["latencies"].append(float(total))
    rows: List[Dict[str, Any]] = []
    for workload, entry in by_workload.items():
        latencies = sorted(entry["latencies"])
        rows.append(
            {
                "workload": workload,
                "requests": entry["requests"],
                "errors": entry["errors"],
                "error_rate": (
                    entry["errors"] / entry["requests"]
                    if entry["requests"]
                    else 0.0
                ),
                "p50_ms": _percentile(latencies, 0.50) if latencies else None,
                "p99_ms": _percentile(latencies, 0.99) if latencies else None,
                "max_ms": latencies[-1] if latencies else None,
            }
        )
    rows.sort(key=lambda row: (-row["requests"], row["workload"]))
    return rows


def render_tail(
    records: List[Dict[str, Any]], last: int = 5
) -> str:
    """The ``repro obs tail`` screen: per-workload SLO table plus the
    most recent ``last`` raw records."""

    def _ms(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:9.2f}"

    rows = summarize_access_records(records)
    lines = [
        f"{'workload':<14} {'requests':>8} {'errors':>6} {'err%':>6} "
        f"{'p50 ms':>9} {'p99 ms':>9} {'max ms':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<14} {row['requests']:>8} {row['errors']:>6} "
            f"{row['error_rate'] * 100:>5.1f}% "
            f"{_ms(row['p50_ms'])} {_ms(row['p99_ms'])} {_ms(row['max_ms'])}"
        )
    if not rows:
        lines.append("(no access records)")
    if records and last > 0:
        lines.append("")
        lines.append(f"last {min(last, len(records))} request(s):")
        for record in records[-last:]:
            stages = record.get("stages_ms") or {}
            total = stages.get("total")
            lines.append(
                f"  {record.get('request_id', '-'):<24} "
                f"{record.get('workload') or '-':<14} "
                f"{record.get('status', '-'):>4} "
                f"{record.get('outcome', '-'):<18} "
                + ("-" if total is None else f"{total:8.2f} ms")
            )
    return "\n".join(lines)
