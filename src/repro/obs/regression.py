"""Perf-regression gate over ``BENCH_*.json`` trajectories.

Every benchmark emits a machine-readable ``BENCH_<name>.json`` (wall
time, instructions/sec, row data).  This module diffs a *current* set
of those records against a committed *baseline* set and classifies each
benchmark:

* throughput benchmarks (both sides report ``instructions_per_sec``)
  regress when the current rate drops more than ``threshold`` below
  the baseline;
* wall-time-only benchmarks regress when the current time exceeds the
  baseline by more than ``threshold``;
* deterministic work drifts (``status "drift"``) when the dynamic
  instruction count changes at all — the workloads are deterministic,
  so a different count means the benchmark is no longer measuring the
  same work and the timing comparison is void;
* a benchmark present in the baseline but not in the current run is
  ``"missing"`` (also a gate failure: silently dropping a benchmark is
  how regressions hide);
* records produced by different execution backends (both sides carry a
  ``"backend"`` field and they disagree) are ``"backend-mismatch"`` —
  the engines are bit-identical but not equally fast, so a cross-backend
  timing comparison is void (records predating the field are exempt).

``repro bench compare`` and ``benchmarks/check_regression.py`` are thin
wrappers over :func:`compare_dirs` / :func:`gate`.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "BenchComparison",
    "compare_dirs",
    "compare_records",
    "gate",
    "load_bench_records",
    "render_comparison",
]

#: Default tolerated fractional slowdown before the gate fails.
DEFAULT_THRESHOLD = 0.10

_FAILING = ("regression", "drift", "missing", "backend-mismatch")


@dataclass
class BenchComparison:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    metric: str  # "instructions_per_sec" | "wall_time_s" | "presence"
    baseline: Optional[float]
    current: Optional[float]
    delta: Optional[float]  # signed fractional change, + = more of metric
    status: str  # "ok" | "improved" | "regression" | "drift" | "missing" | "new"
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in _FAILING


def load_bench_records(directory: str) -> Dict[str, dict]:
    """All ``BENCH_*.json`` records in a directory, keyed by name.

    Manifests (``*.manifest.json``) are skipped; unreadable files are
    surfaced as pseudo-records with an ``"error"`` key rather than
    silently dropped.
    """
    records: Dict[str, dict] = {}
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        if path.endswith(".manifest.json"):
            continue
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        try:
            with open(path) as handle:
                records[name] = json.load(handle)
        except (OSError, ValueError) as exc:
            records[name] = {"name": name, "error": str(exc)}
    return records


def _rate(record: dict) -> Optional[float]:
    value = record.get("instructions_per_sec")
    return float(value) if value else None


def _wall(record: dict) -> Optional[float]:
    value = record.get("wall_time_s")
    return float(value) if value else None


def compare_records(
    name: str,
    baseline: dict,
    current: Optional[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Classify one benchmark; see the module docstring for the rules."""
    if current is None:
        return BenchComparison(
            name, "presence", None, None, None, "missing",
            note="present in baseline, absent in current run",
        )

    base_backend = baseline.get("backend")
    cur_backend = current.get("backend")
    if base_backend and cur_backend and base_backend != cur_backend:
        return BenchComparison(
            name, "backend", None, None, None, "backend-mismatch",
            note=f"baseline ran {base_backend!r}, current ran {cur_backend!r}; "
            "re-baseline or rerun with the same --backend",
        )

    base_instr = baseline.get("instructions")
    cur_instr = current.get("instructions")
    if base_instr and cur_instr and base_instr != cur_instr:
        delta = cur_instr / base_instr - 1.0
        return BenchComparison(
            name, "instructions", float(base_instr), float(cur_instr), delta,
            "drift",
            note="dynamic instruction count changed; not measuring the same work",
        )

    base_rate, cur_rate = _rate(baseline), _rate(current)
    if base_rate and cur_rate:
        delta = cur_rate / base_rate - 1.0
        if delta < -threshold:
            status = "regression"
        elif delta > threshold:
            status = "improved"
        else:
            status = "ok"
        return BenchComparison(
            name, "instructions_per_sec", base_rate, cur_rate, delta, status
        )

    base_wall, cur_wall = _wall(baseline), _wall(current)
    if base_wall and cur_wall:
        delta = cur_wall / base_wall - 1.0  # + = slower
        if delta > threshold:
            status = "regression"
        elif delta < -threshold:
            status = "improved"
        else:
            status = "ok"
        return BenchComparison(name, "wall_time_s", base_wall, cur_wall, delta, status)

    return BenchComparison(
        name, "presence", None, None, None, "ok",
        note="no comparable metric on both sides",
    )


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[BenchComparison]:
    """Compare every baseline benchmark against the current directory.

    Benchmarks only present in the current run are reported as ``"new"``
    (informational, never a failure).
    """
    baselines = load_bench_records(baseline_dir)
    currents = load_bench_records(current_dir)
    rows = [
        compare_records(name, baselines[name], currents.get(name), threshold)
        for name in sorted(baselines)
    ]
    for name in sorted(set(currents) - set(baselines)):
        rows.append(
            BenchComparison(
                name, "presence", None, _rate(currents[name]), None, "new",
                note="no committed baseline",
            )
        )
    return rows


def gate(rows: List[BenchComparison]) -> bool:
    """True when every comparison passes (no regression/drift/missing)."""
    return not any(row.failed for row in rows)


def render_comparison(
    rows: List[BenchComparison], threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Human table of the comparison, via the shared report formatter."""
    from repro.core.reporting import format_table

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return "-"
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"

    body = []
    for row in rows:
        delta = "-" if row.delta is None else f"{row.delta:+.1%}"
        body.append(
            [row.name, row.metric, fmt(row.baseline), fmt(row.current), delta,
             row.status.upper() if row.failed else row.status, row.note]
        )
    return format_table(
        ["benchmark", "metric", "baseline", "current", "delta", "status", "note"],
        body,
        title=f"bench compare (threshold {threshold:.0%})",
    )
