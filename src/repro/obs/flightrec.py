"""Fault flight recorder: a bounded ring of recent telemetry events.

Production incidents are debugged from what the process remembers
about the moments *before* the failure.  The flight recorder keeps a
bounded, always-on ring buffer of recent event records per process —
finished spans, request resolutions, worker deaths, injected faults —
and, when something goes wrong (a request 5xxes, a worker dies, the
chaos harness fires), dumps the ring together with the access-log
tail and a metrics snapshot to a ``flightrec/`` artifact: a readable
incident record instead of "the chaos job failed".

Recording is cheap (one dict append into a ``deque(maxlen=...)``) and
always on once :func:`enable` is called; **dumping** only happens when
a dump directory is configured, and is capped per process so a crash
loop cannot fill the disk.  The CLI server (``repro serve
--flightrec-dir``) and the chaos CI enable it; library use stays inert
unless asked.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "disable",
    "enable",
    "get_recorder",
    "note",
]

#: Events remembered per process.
_DEFAULT_CAPACITY = 512

#: Dumps written per process before the recorder stops writing more.
_DEFAULT_MAX_DUMPS = 16


class FlightRecorder:
    """Bounded event ring plus incident-dump writer.

    ``directory`` names where :meth:`dump` writes incident artifacts;
    None keeps the ring recording but disables dumps entirely.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        capacity: int = _DEFAULT_CAPACITY,
        max_dumps: int = _DEFAULT_MAX_DUMPS,
    ):
        self.directory = directory
        self.capacity = int(capacity)
        self.max_dumps = int(max_dumps)
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._dumps = 0
        self._sequence = 0

    # -- recording -----------------------------------------------------------
    def note(self, event: str, **fields: Any) -> None:
        """Append one event record to the ring (never raises).

        The event name lives under the ``event`` key so payload fields
        (which may legitimately carry e.g. a request ``kind``) never
        collide with it.
        """
        record = {"ts": time.time(), "pid": os.getpid(), "event": event}
        record.update(fields)
        with self._lock:
            self._events.append(record)

    def note_span(self, record: Dict[str, Any]) -> None:
        """Append a finished span's plain-dict record to the ring."""
        with self._lock:
            self._events.append(dict(record, event="span"))

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._events)

    # -- dumping -------------------------------------------------------------
    def dump(
        self,
        reason: str,
        access_tail: Optional[List[Dict[str, Any]]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Write one incident artifact; returns its path.

        The artifact carries the event ring, the caller-provided
        access-log tail, a metrics snapshot, and any ``extra`` context.
        Returns None when no dump directory is configured or the
        per-process dump cap is reached.
        """
        if self.directory is None:
            return None
        with self._lock:
            if self._dumps >= self.max_dumps:
                return None
            self._dumps += 1
            self._sequence += 1
            sequence = self._sequence
            events = list(self._events)
        from repro.obs.metrics import get_registry

        registry = get_registry()
        artifact = {
            "schema": "repro-flightrec-v1",
            "reason": reason,
            "written_unix": time.time(),
            "pid": os.getpid(),
            "events": events,
            "access_log_tail": list(access_tail or ()),
            "metrics": registry.snapshot() if registry is not None else {},
        }
        if extra:
            artifact["context"] = extra
        os.makedirs(self.directory, exist_ok=True)
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
        )[:48]
        path = os.path.join(
            self.directory,
            f"incident-{os.getpid()}-{sequence:03d}-{safe_reason}.json",
        )
        with open(path, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    def status(self) -> Dict[str, Any]:
        """Liveness summary for ``/healthz``."""
        with self._lock:
            return {
                "enabled": True,
                "directory": self.directory,
                "events": len(self._events),
                "capacity": self.capacity,
                "dumps_written": self._dumps,
                "dumps_remaining": (
                    max(0, self.max_dumps - self._dumps)
                    if self.directory is not None
                    else 0
                ),
            }


# ---------------------------------------------------------------------------
# Process-global recorder
# ---------------------------------------------------------------------------

_recorder: Optional[FlightRecorder] = None


def enable(
    directory: Optional[str] = None,
    capacity: int = _DEFAULT_CAPACITY,
    max_dumps: int = _DEFAULT_MAX_DUMPS,
) -> FlightRecorder:
    """Install (or reconfigure) the process-global recorder."""
    global _recorder
    _recorder = FlightRecorder(directory, capacity=capacity, max_dumps=max_dumps)
    return _recorder


def disable() -> None:
    """Drop the process-global recorder; :func:`note` becomes a no-op."""
    global _recorder
    _recorder = None


def get_recorder() -> Optional[FlightRecorder]:
    return _recorder


def note(event: str, **fields: Any) -> None:
    """Record one event on the global recorder, if any (else no-op)."""
    recorder = _recorder
    if recorder is not None:
        recorder.note(event, **fields)
