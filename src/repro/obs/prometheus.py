"""Prometheus text exposition for the metrics registry.

:func:`render_prometheus` turns a ``MetricsRegistry.snapshot()`` into
the Prometheus `text exposition format`__ so ``/metrics?format=
prometheus`` can be scraped by stock tooling, while the JSON snapshot
stays the default for humans and tests.

__ https://prometheus.io/docs/instrumenting/exposition_formats/

Mapping rules (the snapshot is plain data, so the mapping is by shape):

* dotted metric names become underscore families
  (``serve.requests`` → ``serve_requests``);
* a label-encoded name — ``serve.requests{workload="blast",outcome=
  "ok"}``, the registry's canonical labeled form — splits into family
  + label set;
* ``int`` values render as ``counter``, other scalars as ``gauge``;
* histogram snapshots (dicts with ``count``/``sum``) render as
  ``<family>_bucket{le=...}`` cumulative bucket series (when the
  histogram carries fixed buckets) plus ``_sum``/``_count``.

:func:`parse_prometheus` is the matching reader used by the CI step
that scrapes the live endpoint and validates the exposition is
well-formed (every sample typed, bucket series cumulative, ``+Inf``
equal to ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["parse_prometheus", "render_prometheus"]

_FAMILY_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$"
)


def _family(name: str) -> str:
    """A dotted repro metric name as a Prometheus family name."""
    return _FAMILY_OK.sub("_", name.replace(".", "_"))


def _split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Split the registry's ``name{k="v",...}`` form into (base, labels)."""
    if "{" not in name or not name.endswith("}"):
        return name, {}
    base, _, rest = name.partition("{")
    labels = {key: value for key, value in _LABEL_RE.findall(rest[:-1])}
    return base, labels


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: Any) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """A metrics snapshot as Prometheus text exposition (version 0.0.4)."""
    # Group label-encoded names into families so each family gets one
    # TYPE line regardless of how many label sets it carries.
    families: Dict[str, Dict[str, Any]] = {}
    for name, value in snapshot.items():
        base, labels = _split_labels(name)
        family = _family(base)
        if isinstance(value, dict) and "count" in value:
            kind = "histogram"
        elif isinstance(value, bool):
            kind, value = "gauge", int(value)
        elif isinstance(value, int):
            kind = "counter"
        elif isinstance(value, (float,)):
            kind = "gauge"
        else:
            continue  # unknown shape: skip rather than emit garbage
        entry = families.setdefault(family, {"kind": kind, "samples": []})
        if entry["kind"] != kind:
            # Shape collision across label sets; degrade to untyped.
            entry["kind"] = "untyped"
        entry["samples"].append((labels, value))

    lines: List[str] = []
    for family in sorted(families):
        entry = families[family]
        kind = entry["kind"]
        lines.append(f"# TYPE {family} {kind}")
        for labels, value in entry["samples"]:
            if isinstance(value, dict):
                buckets = value.get("buckets") or {}
                cumulative = 0
                for bound in sorted(buckets, key=float):
                    cumulative += int(buckets[bound])
                    bucket_labels = dict(labels, le=_format_value(float(bound)))
                    lines.append(
                        f"{family}_bucket{_label_str(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{family}_bucket{_label_str(inf_labels)} "
                    f"{int(value.get('count', 0))}"
                )
                lines.append(
                    f"{family}_sum{_label_str(labels)} "
                    f"{_format_value(value.get('sum', 0.0))}"
                )
                lines.append(
                    f"{family}_count{_label_str(labels)} "
                    f"{int(value.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{family}{_label_str(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse (and structurally validate) a text exposition.

    Returns ``{"types": {family: kind}, "samples": [(name, labels,
    value), ...]}``.  Raises ``ValueError`` on malformed lines, samples
    whose family has no TYPE declaration, non-cumulative histogram
    bucket series, or a ``+Inf`` bucket disagreeing with ``_count``.
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name, label_body, value_text = match.groups()
        labels = (
            {key: value for key, value in _LABEL_RE.findall(label_body)}
            if label_body
            else {}
        )
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value: {value_text!r}"
                )
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        samples.append((name, labels, value))

    # Validate histogram bucket series: cumulative, +Inf == _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        series: Dict[str, List[Tuple[float, float]]] = {}
        counts: Dict[str, float] = {}
        for name, labels, value in samples:
            base_labels = {k: v for k, v in labels.items() if k != "le"}
            key = _label_str(base_labels)
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    raise ValueError(f"{family}: bucket sample without le")
                bound = math.inf if le == "+Inf" else float(le)
                series.setdefault(key, []).append((bound, value))
            elif name == family + "_count":
                counts[key] = value
        for key, points in series.items():
            points.sort(key=lambda item: item[0])
            last = -math.inf
            for bound, value in points:
                if value < last:
                    raise ValueError(
                        f"{family}: bucket series not cumulative at "
                        f"le={bound}"
                    )
                last = value
            if not points or points[-1][0] != math.inf:
                raise ValueError(f"{family}: missing +Inf bucket")
            if key in counts and points[-1][1] != counts[key]:
                raise ValueError(
                    f"{family}: +Inf bucket {points[-1][1]} != _count "
                    f"{counts[key]}"
                )
    return {"types": types, "samples": samples}
