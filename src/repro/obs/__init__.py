"""repro.obs: telemetry for the pipeline itself.

The paper's method is instrumentation — ATOM counting every load the
BioPerf programs execute.  This package turns the same discipline on
our own stack so a characterization run is never a black box:

* :mod:`repro.obs.tracing` — nested spans with monotonic timings
  (``with obs.span("interpret", workload=...):``);
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry
  (instructions retired, events dispatched vs. suppressed, run-cache
  hits/misses, worker utilization);
* :mod:`repro.obs.sinks` — JSONL trace export plus the ``repro trace
  summary`` tree renderer;
* :mod:`repro.obs.manifest` — run provenance written next to results
  (config fingerprint shared with the run cache, git rev, platform);
* :mod:`repro.obs.regression` — the ``repro bench compare`` /
  ``benchmarks/check_regression.py`` perf gate over ``BENCH_*.json``;
* :mod:`repro.obs.context` — request-scoped trace-context propagation
  (the ambient request ID every span inherits, across processes);
* :mod:`repro.obs.accesslog` — the structured one-record-per-request
  JSONL access log behind ``repro obs tail``;
* :mod:`repro.obs.prometheus` — ``/metrics?format=prometheus`` text
  exposition and its validating parser;
* :mod:`repro.obs.flightrec` — the bounded fault flight recorder that
  dumps incident artifacts on 5xx/worker-death/chaos faults.

Telemetry is off by default and the off path is a no-op: ``span()``
returns a shared inert span and ``metrics()`` a registry that discards
updates, so instrumented hot paths cost nothing until :func:`enable`
is called (the CLI's ``--trace`` flag or ``REPRO_TRACE=1`` for the
benchmark harness).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs import context
from repro.obs import flightrec
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.context import TraceContext
from repro.obs.metrics import metrics
from repro.obs.tracing import get_tracer, span

__all__ = [
    "TraceContext",
    "configure_from_env",
    "context",
    "disable",
    "enable",
    "enabled",
    "flightrec",
    "flush_to",
    "get_tracer",
    "metrics",
    "span",
]


def enable() -> None:
    """Turn on span collection and the live metrics registry."""
    _tracing.enable()
    _metrics.enable()


def disable() -> None:
    """Turn telemetry off and drop anything collected."""
    _tracing.disable()
    _metrics.disable()


def enabled() -> bool:
    """Whether telemetry is currently collecting."""
    return _tracing.enabled()


def configure_from_env() -> Optional[str]:
    """Enable telemetry when ``$REPRO_TRACE`` is set.

    Returns the trace output path (``$REPRO_TRACE`` itself when it
    names a file, else ``"repro-trace.jsonl"``), or None when the
    variable is unset/falsy and telemetry stays off.
    """
    value = os.environ.get("REPRO_TRACE", "")
    if not value or value.lower() in ("0", "false", "no"):
        return None
    enable()
    if value.lower() in ("1", "true", "yes"):
        return "repro-trace.jsonl"
    return value


def flush_to(path: str) -> int:
    """Write collected spans + metrics to a JSONL file; returns lines.

    Drains the tracer, so a long-lived process can flush periodically
    without duplicating spans.  No-op (returns 0) when telemetry is
    off.
    """
    tracer = _tracing.get_tracer()
    if tracer is None:
        return 0
    from repro.obs.sinks import write_trace_jsonl

    return write_trace_jsonl(path, tracer.drain(), metrics().snapshot())
