#!/usr/bin/env python
"""Figures 3, 5 and 7 in miniature: look at the machine code.

Shows the three codegen situations the paper illustrates:

* the original hot loop, where every IF compiles to a load->compare->
  branch chain with a store in the THEN path (Figure 3 / 7(a)),
* the same source compiled with the ``restrict`` alias model, where the
  compiler's own hoisting pulls the next boxes' loads above the store
  (Figure 5(b)),
* the manually transformed source, where the THEN paths are store-free
  and the compiler turns the branches into conditional moves and merges
  the whole body into one schedulable block (Figure 7(b)).

Run:  python examples/inspect_machine_code.py
"""

from repro.lang import CompilerOptions, compile_source

SOURCE = """
int M;
int mpp[], tpmm[], dpp[], tpdm[], mc[], dc[];

void kernel() {
  int k; int sc;
  for (k = 1; k <= M; k++) {
    if ((sc = mpp[k-1] + tpmm[k-1]) > mc[k]) mc[k] = sc;
    if ((sc = dpp[k-1] + tpdm[k-1]) > dc[k]) dc[k] = sc;
  }
}
"""

TRANSFORMED = """
int M;
int mpp[], tpmm[], dpp[], tpdm[], mc[], dc[];

void kernel() {
  int k; int temp1; int temp2;
  for (k = 1; k <= M; k++) {
    temp1 = mpp[k-1] + tpmm[k-1];
    temp2 = dpp[k-1] + tpdm[k-1];
    if (temp1 < mc[k]) temp1 = mc[k];
    if (temp2 < dc[k]) temp2 = dc[k];
    mc[k] = temp1;
    dc[k] = temp2;
  }
}
"""


def show(title: str, source: str, options: CompilerOptions) -> None:
    program = compile_source(source, title, options)
    branches = sum(1 for i in program.all_instructions() if i.is_branch)
    cmovs = sum(1 for i in program.all_instructions() if i.is_cmov)
    print("=" * 72)
    print(f"{title}   (conditional branches: {branches}, cmovs: {cmovs})")
    print("=" * 72)
    print(program.disassemble())
    print()


def main() -> None:
    show(
        "Figure 7(a): original, may-alias (stores block everything)",
        SOURCE,
        CompilerOptions(opt_level=3),
    )
    show(
        "Figure 5(b): original, restrict (compiler hoists past the store)",
        SOURCE,
        CompilerOptions(opt_level=3, alias_model="restrict"),
    )
    show(
        "Figure 7(b): transformed (branches become conditional moves)",
        TRANSFORMED,
        CompilerOptions(opt_level=3),
    )


if __name__ == "__main__":
    main()
