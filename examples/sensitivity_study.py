#!/usr/bin/env python
"""Sensitivity study: how the transformation's benefit responds to the
machine, using the public sweep API.

Reproduces in one script what the ablation benchmarks measure — the
three levers the paper's Section 5 discussion identifies:

* L1 hit latency (the thing being hidden),
* misprediction penalty (the thing being inflated),
* register count (the thing the extra temporaries consume).

Run:  python examples/sensitivity_study.py [workload] [scale]
"""

import sys

from repro.core.sweeps import render_sweep, sweep_compiler_flag, sweep_platform_field


def main(workload: str = "hmmsearch", scale: str = "test") -> None:
    print(f"sensitivity of the load-transform speedup ({workload}, scale {scale})\n")

    points = sweep_platform_field(workload, "l1_hit_int", [1, 2, 3, 5], scale=scale)
    print(render_sweep(points, title="vs L1 hit latency (Alpha model)"))
    print()

    points = sweep_platform_field(
        workload, "mispredict_penalty", [0, 7, 14, 28], scale=scale
    )
    print(render_sweep(points, title="vs misprediction penalty"))
    print()

    points = sweep_platform_field(workload, "int_registers", [8, 16, 32], scale=scale)
    print(render_sweep(points, title="vs architectural register count"))
    print()

    points = sweep_compiler_flag(
        workload, "alias_model", ["may-alias", "restrict"], scale=scale
    )
    print(render_sweep(points, title="vs compiler alias model (Figure 5 / restrict)"))


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "hmmsearch",
        sys.argv[2] if len(sys.argv) > 2 else "test",
    )
