#!/usr/bin/env python
"""Bring your own kernel: apply the paper's methodology to new code.

A downstream user's workflow: write a MiniC kernel of your own, profile
it, let the candidate selector point at the problem loads, try a manual
load-scheduling transformation, and verify (a) the transformed kernel
computes the same results and (b) it is faster on the machine models.

The kernel here is a run-length-threshold scanner (not from the paper):
it walks a value stream, conditionally updating per-bucket statistics —
the same guarded-store pattern that defeats if-conversion and load
hoisting in BioPerf.

Run:  python examples/custom_kernel.py
"""

import random

from repro.atom import characterize
from repro.core import evaluate_workload, select_candidates
from repro.cpu import ALPHA_21264, make_timing_model
from repro.exec import Interpreter, run_program
from repro.lang import CompilerOptions, compile_source

ORIGINAL = """
int N, NB;
int stream[], thresh[], counts[], best[];

void kernel() {
  int i; int b; int v;
  for (i = 0; i < N; i++) {
    v = stream[i];
    b = v % NB;
    if (b < 0) b = -b;
    if (v > thresh[b]) counts[b] = counts[b] + 1;
    if (v > best[b]) best[b] = v;
  }
}
"""

#: Manual load scheduling: thresh[b] / best[b] / counts[b] preloaded
#: into temporaries so the comparisons no longer sit one cycle behind a
#: load, and the hot THEN paths become register updates.
TRANSFORMED = """
int N, NB;
int stream[], thresh[], counts[], best[];

void kernel() {
  int i; int b; int v;
  int t; int c; int m;
  for (i = 0; i < N; i++) {
    v = stream[i];
    b = v % NB;
    if (b < 0) b = -b;
    t = thresh[b];
    c = counts[b];
    m = best[b];
    if (v > t) c = c + 1;
    if (v > m) m = v;
    counts[b] = c;
    best[b] = m;
  }
}
"""


def dataset(n=4000, buckets=16, seed=0):
    rng = random.Random(seed)
    return {
        "N": n,
        "NB": buckets,
        "stream": [rng.randint(-500, 500) for _ in range(n)],
        "thresh": [rng.randint(-100, 100) for _ in range(buckets)],
        "counts": [0] * buckets,
        "best": [-(10**9)] * buckets,
    }


def main() -> None:
    # 1. Profile the original.
    program = compile_source(ORIGINAL, "custom", CompilerOptions())
    result = characterize(program, dataset())
    print(f"executed {result.executed} instructions; "
          f"loads {result.mix.load_fraction:.1%}, "
          f"load->branch {result.sequences.summary().load_to_branch_fraction:.1%}")
    print("\ncandidates:")
    for candidate in select_candidates(result):
        print(f"  {candidate}")

    # 2. Equivalence: the transformation must not change results.
    reference = run_program(
        compile_source(ORIGINAL, "ref", CompilerOptions(opt_level=0)), dataset()
    )
    transformed = run_program(
        compile_source(TRANSFORMED, "new", CompilerOptions(opt_level=0)), dataset()
    )
    assert reference.array("counts") == transformed.array("counts")
    assert reference.array("best") == transformed.array("best")
    print("\nequivalence check passed")

    # 3. Timing on the Alpha model.
    options = ALPHA_21264.compiler_options()
    cycles = {}
    for label, source in (("original", ORIGINAL), ("transformed", TRANSFORMED)):
        compiled = compile_source(source, label, options)
        model = make_timing_model(ALPHA_21264)
        Interpreter(compiled, dataset()).run(consumers=(model,))
        cycles[label] = model.result().cycles
        print(f"{label}: {cycles[label]} cycles "
              f"(mispredict {model.result().misprediction_rate:.1%})")
    speedup = cycles["original"] / cycles["transformed"] - 1
    print(f"\nspeedup from manual load scheduling: {speedup:+.1%}")


if __name__ == "__main__":
    main()
