#!/usr/bin/env python
"""Characterize any registered workload, BioPerf-style.

Produces the Section 2 characterization for one program: instruction
mix (Figure 1), static-load concentration (Figure 2), cache behaviour
(Table 2), load sequences (Table 4), and the per-load profile
(Table 5).

Run:  python examples/characterize_workload.py [workload] [scale]
      workloads: blast clustalw dnapenny fasta hmmcalibrate hmmpfam
                 hmmsearch predator promlk gcc crafty vortex
"""

import sys

from repro.atom import characterize
from repro.core.reporting import format_table, pct
from repro.workloads import get_workload


def main(name: str = "hmmsearch", scale: str = "small") -> None:
    spec = get_workload(name)
    print(f"{spec.name}: {spec.description}  [{spec.category}]")
    print(f"hot code: {spec.hot_function} in {spec.hot_file}")
    print(f"characterizing at scale '{scale}' ...\n")

    result = characterize(spec.program(), spec.dataset(scale, seed=0))
    mix = result.mix
    print(
        format_table(
            ["metric", "value", "paper"],
            [
                ["executed instructions", mix.counts.total,
                 f"{spec.paper.instructions_billions or 'n.a.'} B" if spec.paper.instructions_billions else "n.a."],
                ["loads", pct(mix.load_fraction), "~30% avg"],
                ["stores", pct(mix.store_fraction), None],
                ["conditional branches", pct(mix.branch_fraction), None],
                ["floating point", pct(mix.fp_fraction, 2), pct(spec.paper.fp_fraction, 2) if spec.paper.fp_fraction is not None else None],
            ],
            title="instruction profile (Figure 1 / Table 1)",
        )
    )

    coverage = result.coverage
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["static loads executed", coverage.static_load_count],
                ["coverage of top 80 static loads", pct(coverage.coverage_at(80))],
                ["static loads for 90% coverage", coverage.loads_for_coverage(0.9)],
            ],
            title="static-load concentration (Figure 2)",
        )
    )

    hierarchy = result.cache.hierarchy
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["L1 local miss rate", pct(hierarchy.l1_local_miss_rate, 2)],
                ["L2 local miss rate", pct(hierarchy.l2_local_miss_rate, 2)],
                ["overall (to memory)", pct(hierarchy.overall_miss_rate, 3)],
                ["AMAT", f"{hierarchy.amat:.2f} cycles"],
            ],
            title="cache behaviour (Table 2)",
        )
    )

    summary = result.sequences.summary()
    print()
    print(
        format_table(
            ["metric", "value", "paper"],
            [
                ["load->branch loads", pct(summary.load_to_branch_fraction),
                 pct(spec.paper.load_to_branch) if spec.paper.load_to_branch is not None else None],
                ["fed-branch misprediction", pct(summary.seq_branch_misprediction_rate),
                 pct(spec.paper.seq_misprediction) if spec.paper.seq_misprediction is not None else None],
                ["loads after hard branches", pct(summary.after_hard_branch_fraction),
                 pct(spec.paper.after_hard_branch) if spec.paper.after_hard_branch is not None else None],
            ],
            title="load sequences (Table 4)",
        )
    )

    print()
    print(f"hottest loads (Table 5 style, in {spec.hot_file}):")
    for row in result.load_profile(top=8):
        print(f"  {row}")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "hmmsearch",
        sys.argv[2] if len(sys.argv) > 2 else "small",
    )
