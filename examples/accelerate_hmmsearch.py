#!/usr/bin/env python
"""The paper's full loop on hmmsearch: characterize -> select candidates
-> apply the Figure 6(c) source transformation -> measure the speedup on
all four Table 7 platforms.

Run:  python examples/accelerate_hmmsearch.py [scale]
      (scale: test | small | medium | large; default small)
"""

import sys

from repro.atom import characterize
from repro.core import evaluate_workload, select_candidates
from repro.core.candidates import candidate_lines
from repro.core.reporting import format_table, pct
from repro.cpu import PLATFORMS
from repro.workloads import get_workload


def main(scale: str = "small") -> None:
    spec = get_workload("hmmsearch")

    # Step 1-2: profile the original program and select candidates, as
    # Section 3 prescribes.
    print(f"characterizing hmmsearch at scale '{scale}' ...")
    result = characterize(spec.program(), spec.dataset(scale, seed=0))
    candidates = select_candidates(result)
    print(f"\n{len(candidates)} candidate loads (frequent + hard branches):")
    for candidate in candidates[:12]:
        print(f"  {candidate}")
    print(f"source lines to edit: {candidate_lines(candidates)}")

    # Step 3: the transformed source (Figure 6(c)) ships with the
    # workload; show that it is a modest edit.
    stats = spec.transform_stats()
    print(
        f"\ntransformation touches ~{stats['loc_involved']} source lines "
        f"covering {stats['loads_considered']} static loads "
        f"(paper: {spec.paper.loc_involved} lines, "
        f"{spec.paper.loads_considered} loads)"
    )

    # Step 4: evaluate on the four platforms.
    rows = []
    for key in ("alpha", "powerpc", "pentium4", "itanium"):
        platform = PLATFORMS[key]
        evaluation = evaluate_workload(spec, platform, scale=scale, seed=0)
        paper = spec.paper.runtimes.get(key)
        paper_speedup = pct(paper[0] / paper[1] - 1) if paper else "n.a."
        rows.append(
            [
                platform.name,
                evaluation.original.cycles,
                evaluation.transformed.cycles,
                pct(evaluation.speedup),
                paper_speedup,
            ]
        )
        print(f"  {platform.name}: done")
    print()
    print(
        format_table(
            ["platform", "original cycles", "transformed cycles", "speedup", "paper"],
            rows,
            title="hmmsearch: original vs load-transformed (Table 8 row)",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
