#!/usr/bin/env python
"""Quickstart: compile a kernel, run it, characterize its loads.

This is the smallest end-to-end tour of the library:

1. write a MiniC kernel (the paper's ``if ((sc = ...) > mc[k])`` idiom),
2. compile it with the -O3-like pipeline,
3. execute it functionally and check the result,
4. attach the ATOM-style tools and look at the load behaviour the paper
   studies: instruction mix, static-load concentration, cache hits, and
   load->branch sequences.

Run:  python examples/quickstart.py
"""

import random

from repro.atom import characterize
from repro.core import select_candidates
from repro.lang import CompilerOptions, compile_source

SOURCE = """
int M;
int mpp[], tpmm[], ip[], tpim[], mc[];

void kernel() {
  int k; int sc;
  for (k = 1; k <= M; k++) {
    mc[k] = mpp[k-1] + tpmm[k-1];
    if ((sc = ip[k-1] + tpim[k-1]) > mc[k]) mc[k] = sc;
    if (mc[k] < -999999) mc[k] = -999999;
  }
}
"""


def main() -> None:
    rng = random.Random(0)
    m = 64
    bindings = {
        "M": m,
        "mpp": [rng.randint(-300, 200) for _ in range(m + 1)],
        "tpmm": [rng.randint(-300, 200) for _ in range(m + 1)],
        "ip": [rng.randint(-300, 200) for _ in range(m + 1)],
        "tpim": [rng.randint(-300, 200) for _ in range(m + 1)],
        "mc": [0] * (m + 1),
    }

    program = compile_source(SOURCE, "quickstart", CompilerOptions(opt_level=3))
    print(f"compiled: {program}")

    result = characterize(program, bindings)
    mix = result.mix
    print(f"\nexecuted {result.executed} instructions")
    print(f"  loads:        {mix.load_fraction:6.1%}")
    print(f"  stores:       {mix.store_fraction:6.1%}")
    print(f"  cond branches:{mix.branch_fraction:6.1%}")
    print(f"  other:        {mix.other_fraction:6.1%}")

    coverage = result.coverage
    print(f"\nstatic loads executed: {coverage.static_load_count}")
    print(f"top 5 static loads cover {coverage.coverage_at(5):.1%} of dynamic loads")

    hierarchy = result.cache.hierarchy
    print(f"\nL1 local miss rate: {hierarchy.l1_local_miss_rate:.2%}")
    print(f"AMAT (paper formula): {hierarchy.amat:.2f} cycles")

    summary = result.sequences.summary()
    print(f"\nload->branch loads: {summary.load_to_branch_fraction:.1%} of all loads")
    print(f"their branches mispredict at {summary.seq_branch_misprediction_rate:.1%}")

    print("\nSection 3 optimization candidates (hot loads feeding hard branches):")
    for candidate in select_candidates(result):
        print(f"  {candidate}")

    # The functional result is real: verify one element by hand.
    mc = result.program  # program is pure; re-run for values
    from repro.exec import run_program

    interp = run_program(program, bindings)
    k = 1
    expected = max(
        bindings["mpp"][0] + bindings["tpmm"][0],
        bindings["ip"][0] + bindings["tpim"][0],
    )
    assert interp.array("mc")[k] == max(expected, -999999)
    print("\nfunctional check passed: mc[1] =", interp.array("mc")[1])


if __name__ == "__main__":
    main()
