"""Setup shim so the package installs in environments without the
`wheel` package (pip editable installs fall back to setup.py develop)."""
from setuptools import setup

setup()
